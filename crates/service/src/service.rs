//! The in-process allocation service: a persistent worker pool over a
//! bounded request queue, with deadline shedding and watermark-based
//! graceful degradation.

#[cfg(any(test, feature = "chaos"))]
use crate::fault::{FaultInjector, FaultPlan};
use crate::metrics::{MetricsInner, ServiceMetrics};
use crate::queue::{BoundedQueue, PushError};
use lra_core::batch::{self, BatchItem, WorkerScratch};
use lra_core::driver::AllocationPipeline;
use lra_core::portfolio::portfolio_cache;
use lra_ir::Function;
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`AllocationService::start`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The pipeline every request runs through (typically a
    /// `Portfolio`-policy pipeline, so the process-wide result cache
    /// serves repeat methods).
    pub pipeline: AllocationPipeline,
    /// Worker threads. `0` resolves via
    /// [`lra_core::batch::default_threads`].
    pub workers: usize,
    /// Request-queue capacity: submissions beyond it are rejected
    /// with [`SubmitError::QueueFull`] (explicit backpressure).
    pub queue_capacity: usize,
    /// Queue-depth watermark for graceful degradation: when a worker
    /// picks up a job while **more** than this many requests are still
    /// queued behind it, the job runs through the degraded
    /// (cheap-tier-only, no-escalation) variant of the pipeline
    /// ([`AllocationPipeline::degraded`]) and the `degraded` counter
    /// ticks. `None` (the default) disables degradation — every
    /// request then takes the full pipeline, keeping the byte-identity
    /// contract with the batch path.
    pub degrade_watermark: Option<usize>,
    /// Read timeout the TCP front end sets on accepted connections: a
    /// client silent for this long is treated as gone and its
    /// connection closed, so an idle peer cannot pin a handler thread.
    pub read_timeout: Duration,
    /// Deterministic fault schedule for chaos testing (compiled in
    /// only under `cfg(any(test, feature = "chaos"))`). `None` — the
    /// default — injects nothing.
    #[cfg(any(test, feature = "chaos"))]
    pub faults: Option<FaultPlan>,
}

/// Default queue capacity: deep enough that normal bursts never see a
/// rejection, shallow enough that a stalled worker pool surfaces as
/// backpressure (not as unbounded memory growth).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Default read timeout on accepted TCP connections (mirrors the write
/// timeout): generous against slow clients, finite against dead ones.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

impl ServiceConfig {
    /// A config running `pipeline` with the default worker count and
    /// queue capacity, no degradation watermark and no faults.
    pub fn new(pipeline: AllocationPipeline) -> Self {
        ServiceConfig {
            pipeline,
            workers: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            degrade_watermark: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
            #[cfg(any(test, feature = "chaos"))]
            faults: None,
        }
    }

    /// Sets the worker-thread count (`0` = default).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "a zero-capacity queue rejects everything");
        self.queue_capacity = n;
        self
    }

    /// Sets (or clears) the graceful-degradation watermark — see
    /// [`ServiceConfig::degrade_watermark`].
    pub fn degrade_watermark(mut self, depth: Option<usize>) -> Self {
        self.degrade_watermark = depth;
        self
    }

    /// Sets the TCP read timeout — see
    /// [`ServiceConfig::read_timeout`].
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Installs a deterministic fault schedule for chaos testing.
    #[cfg(any(test, feature = "chaos"))]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Why a submission was not accepted. The function is **not** lost —
/// both variants hand it back so the caller can retry or fail over.
#[derive(Debug)]
pub enum SubmitError {
    /// The request queue is at capacity — the server is saturated and
    /// the caller should back off and retry ([`AllocationService`]
    /// never blocks a submitter to hide overload).
    QueueFull {
        /// The rejected function, returned to the caller.
        function: Function,
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service is draining for shutdown; no new work is accepted.
    ShuttingDown {
        /// The rejected function, returned to the caller.
        function: Function,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, .. } => {
                write!(f, "queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown { .. } => write!(f, "service is shutting down"),
        }
    }
}

/// What the service did with one **accepted** request: served it (the
/// common case), or shed it at dequeue because its deadline had
/// already run out. Rejected submissions never get this far — they
/// surface as [`SubmitError`] at submit time.
#[derive(Debug)]
// One outcome exists per completed request and moves a handful of
// times; boxing the item to shrink the enum would buy nothing but an
// extra allocation on the hot path.
#[allow(clippy::large_enum_variant)]
pub enum ServeOutcome {
    /// The request ran through the pipeline; the item is byte-
    /// compatible with a [`lra_core::batch::BatchAllocator`] run
    /// (unless the request carried a deadline or was degraded — both
    /// opt out of byte-identity by design).
    Served(BatchItem),
    /// The request's deadline expired while it was still queued; no
    /// worker time was spent on it.
    DeadlineExpired {
        /// Name of the function the request carried.
        function: String,
    },
}

impl ServeOutcome {
    /// The served item, or `None` for a deadline-shed request.
    pub fn item(self) -> Option<BatchItem> {
        match self {
            ServeOutcome::Served(item) => Some(item),
            ServeOutcome::DeadlineExpired { .. } => None,
        }
    }
}

/// How a completed request's [`ServeOutcome`] gets back to the
/// submitter.
enum Responder {
    /// An in-process ticket wait.
    Channel(mpsc::Sender<ServeOutcome>),
    /// An arbitrary completion callback (the TCP front end writes the
    /// response line from it, on the worker thread).
    Callback(Box<dyn FnOnce(ServeOutcome) + Send>),
}

struct Job {
    function: Function,
    responder: Responder,
    enqueued: Instant,
    /// Absolute point past which the request is shed instead of
    /// served (`None` = no deadline).
    deadline: Option<Instant>,
    /// Whether the worker arms [`lra_core::trace`] around this job so
    /// its [`BatchItem::trace`] comes back populated (the `trace:true`
    /// proto request). Tracing never changes output bytes, only
    /// attaches the side-channel report.
    trace: bool,
}

struct Shared {
    queue: BoundedQueue<Job>,
    pipeline: AllocationPipeline,
    /// Prebuilt [`AllocationPipeline::degraded`] variant, so the
    /// per-job degradation decision costs a pointer pick, not a
    /// pipeline clone.
    degraded_pipeline: AllocationPipeline,
    degrade_watermark: Option<usize>,
    metrics: MetricsInner,
    workers: usize,
    #[cfg(any(test, feature = "chaos"))]
    faults: Option<FaultInjector>,
}

/// A pending request's receipt: [`Ticket::wait`] blocks until the
/// worker pool finishes this request.
pub struct Ticket {
    rx: mpsc::Receiver<ServeOutcome>,
}

impl Ticket {
    /// Blocks until the request completes and returns its item. Items
    /// are identical to what [`lra_core::batch::BatchAllocator`]
    /// produces for the same function and pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the request was shed because its deadline expired —
    /// deadline-carrying submissions must use
    /// [`Ticket::wait_outcome`] — or if the worker processing this
    /// request panicked so hard the response was never sent (the
    /// pipeline itself is panic-caught, so that indicates a bug in the
    /// service).
    pub fn wait(self) -> BatchItem {
        match self.wait_outcome() {
            ServeOutcome::Served(item) => item,
            ServeOutcome::DeadlineExpired { function } => panic!(
                "request {function:?} was shed at its deadline; \
                 deadline-carrying submissions must wait via wait_outcome()"
            ),
        }
    }

    /// Blocks until the request completes and returns the full
    /// [`ServeOutcome`] — the wait for deadline-carrying submissions,
    /// where shedding is an expected answer.
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the request without responding
    /// (a service bug; the drain contract promises every accepted
    /// request an answer).
    pub fn wait_outcome(self) -> ServeOutcome {
        self.rx.recv().expect("service dropped an accepted request")
    }
}

/// A long-lived allocation server: accepted [`Function`]s flow through
/// a bounded queue into a persistent worker pool running one
/// [`AllocationPipeline`]; results come back as [`BatchItem`]s.
///
/// # Contracts
///
/// * **Backpressure, not blocking**: [`AllocationService::submit`]
///   returns [`SubmitError::QueueFull`] instead of stalling.
/// * **Lossless shutdown**: every accepted request is answered before
///   [`AllocationService::shutdown`] returns (deadline-shed requests
///   are answered with [`ServeOutcome::DeadlineExpired`]).
/// * **Batch-identical output**: each deadline-free item is produced
///   by [`lra_core::batch::allocate_item`] — the same per-item engine
///   as [`lra_core::batch::BatchAllocator`] — so reports are
///   byte-identical to a batch run at any worker count, **as long as
///   the degradation watermark never trips** (degraded and
///   deadline-budgeted runs trade that identity for survival, and say
///   so in the metrics).
///
/// # Example
///
/// ```
/// use lra_core::driver::AllocationPipeline;
/// use lra_ir::builder::FunctionBuilder;
/// use lra_service::{AllocationService, ServiceConfig};
/// use lra_targets::{Target, TargetKind};
///
/// let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231)).registers(2);
/// let service = AllocationService::start(ServiceConfig::new(pipeline).workers(2));
/// let mut b = FunctionBuilder::new("demo");
/// let e = b.entry_block();
/// let x = b.op(e, &[]);
/// b.op(e, &[x]);
/// let ticket = service.submit(b.finish()).expect("queue has room");
/// assert!(ticket.wait().outcome.is_ok());
/// let metrics = service.shutdown();
/// assert_eq!(metrics.served, 1);
/// ```
pub struct AllocationService {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl AllocationService {
    /// Starts the worker pool and returns the running service.
    pub fn start(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            batch::default_threads()
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            degraded_pipeline: cfg.pipeline.degraded(),
            pipeline: cfg.pipeline,
            degrade_watermark: cfg.degrade_watermark,
            metrics: MetricsInner::new(portfolio_cache().stats(), workers),
            workers,
            #[cfg(any(test, feature = "chaos"))]
            faults: cfg.faults.map(FaultInjector::new),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        AllocationService {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Submits one function, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after shutdown began. The
    /// function is returned inside the error either way.
    pub fn submit(&self, function: Function) -> Result<Ticket, SubmitError> {
        self.submit_deadline(function, None)
    }

    /// [`AllocationService::submit`] with an optional absolute
    /// deadline: if the request is still queued at `deadline`, the
    /// worker sheds it ([`ServeOutcome::DeadlineExpired`]) instead of
    /// running the pipeline, and a request that starts before the
    /// deadline runs under the remaining wall-clock budget
    /// ([`AllocationPipeline::time_budget`]). Wait on the ticket with
    /// [`Ticket::wait_outcome`].
    ///
    /// # Errors
    ///
    /// Same rejections as [`AllocationService::submit`].
    pub fn submit_deadline(
        &self,
        function: Function,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(function, Responder::Channel(tx), deadline, false)?;
        Ok(Ticket { rx })
    }

    /// [`AllocationService::submit_deadline`] with per-request tracing:
    /// the worker arms [`lra_core::trace`] around the run, so the
    /// returned item carries a populated
    /// [`lra_core::batch::BatchItem::trace`]. Output bytes are
    /// identical to an untraced submission.
    ///
    /// # Errors
    ///
    /// Same rejections as [`AllocationService::submit`].
    pub fn submit_traced(
        &self,
        function: Function,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(function, Responder::Channel(tx), deadline, true)?;
        Ok(Ticket { rx })
    }

    /// Submits one function with a completion callback instead of a
    /// ticket. The callback runs **on the worker thread** right after
    /// the pipeline finishes — keep it short (the TCP front end uses
    /// it to write one response line).
    ///
    /// # Errors
    ///
    /// Same rejections as [`AllocationService::submit`].
    pub fn submit_with(
        &self,
        function: Function,
        on_done: impl FnOnce(ServeOutcome) + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.submit_with_deadline(function, None, on_done)
    }

    /// [`AllocationService::submit_with`] with an optional absolute
    /// deadline (the callback analogue of
    /// [`AllocationService::submit_deadline`]).
    ///
    /// # Errors
    ///
    /// Same rejections as [`AllocationService::submit`].
    pub fn submit_with_deadline(
        &self,
        function: Function,
        deadline: Option<Instant>,
        on_done: impl FnOnce(ServeOutcome) + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.enqueue(
            function,
            Responder::Callback(Box::new(on_done)),
            deadline,
            false,
        )
    }

    /// [`AllocationService::submit_with_deadline`] with per-request
    /// tracing (the callback analogue of
    /// [`AllocationService::submit_traced`]) — the TCP front end's
    /// entry point for `trace:true` requests.
    ///
    /// # Errors
    ///
    /// Same rejections as [`AllocationService::submit`].
    pub fn submit_traced_with(
        &self,
        function: Function,
        deadline: Option<Instant>,
        on_done: impl FnOnce(ServeOutcome) + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.enqueue(
            function,
            Responder::Callback(Box::new(on_done)),
            deadline,
            true,
        )
    }

    fn enqueue(
        &self,
        function: Function,
        responder: Responder,
        deadline: Option<Instant>,
        trace: bool,
    ) -> Result<(), SubmitError> {
        let job = Job {
            function,
            responder,
            enqueued: Instant::now(),
            deadline,
            trace,
        };
        self.shared.queue.try_push(job).map_err(|e| {
            self.shared.metrics.record_rejected();
            match e {
                PushError::Full(job) => SubmitError::QueueFull {
                    function: job.function,
                    capacity: self.shared.queue.capacity(),
                },
                PushError::Closed(job) => SubmitError::ShuttingDown {
                    function: job.function,
                },
            }
        })
    }

    /// Convenience driver: pushes every function through the service
    /// (retrying `queue_full` rejections with a tiny backoff, so the
    /// call exercises real backpressure when the corpus exceeds the
    /// queue) and returns the items **in input order** — the shape
    /// [`lra_core::batch::BatchAllocator::run`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the service shuts down while this call is submitting.
    pub fn run_all(&self, functions: &[Function]) -> Vec<BatchItem> {
        let mut tickets = Vec::with_capacity(functions.len());
        for f in functions {
            let mut function = f.clone();
            loop {
                match self.submit(function) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(SubmitError::QueueFull { function: back, .. }) => {
                        function = back;
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Err(SubmitError::ShuttingDown { .. }) => {
                        panic!("service shut down mid-run_all")
                    }
                }
            }
        }
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// A snapshot of the server's counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.metrics.snapshot(
            self.shared.queue.high_water(),
            self.shared.queue.capacity(),
            self.shared.workers,
            portfolio_cache().stats(),
        )
    }

    /// Requests currently queued (excluding in-flight work).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Counts of the faults the configured [`FaultPlan`] actually
    /// injected so far (`None` when no plan is installed). A chaos
    /// harness asserts these are nonzero — a fault plan that never
    /// fires tests nothing.
    #[cfg(any(test, feature = "chaos"))]
    pub fn fault_report(&self) -> Option<crate::fault::FaultReport> {
        self.shared.faults.as_ref().map(FaultInjector::report)
    }

    /// The live injector, for the TCP front end's write-path faults.
    #[cfg(any(test, feature = "chaos"))]
    pub(crate) fn fault_injector(&self) -> Option<&FaultInjector> {
        self.shared.faults.as_ref()
    }

    /// Graceful shutdown: stops accepting work, serves everything
    /// already accepted, joins the workers, and returns the final
    /// metrics. Idempotent — later calls just return a fresh snapshot.
    pub fn shutdown(&self) -> ServiceMetrics {
        self.shared.queue.close();
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        self.metrics()
    }
}

impl Drop for AllocationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Most jobs one worker claims per queue-lock acquisition. Small
/// enough that a burst still spreads across the pool (and `pop_run`'s
/// half rule tightens that further), large enough that a backed-up
/// queue costs one lock round-trip per few jobs instead of per job.
const WORKER_CLAIM: usize = 4;

/// Delivers one outcome to its submitter, absorbing callback panics
/// (user code must not kill a worker — the queue behind it still holds
/// accepted requests the drain contract promises to serve; the panic
/// message still reaches stderr via the process panic hook). A
/// submitter that dropped its ticket no longer wants the answer, so a
/// dead channel is ignored too.
fn respond(responder: Responder, outcome: ServeOutcome) {
    match responder {
        Responder::Channel(tx) => {
            let _ = tx.send(outcome);
        }
        Responder::Callback(cb) => {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || cb(outcome)));
        }
    }
}

/// A chaos-injected worker panic, caught exactly the way a pipeline
/// panic is, so the recovery path under test is the production one:
/// the job completes as an error item, the worker lives on.
#[cfg(any(test, feature = "chaos"))]
fn chaos_panic_item(function: &Function) -> BatchItem {
    use lra_core::driver::{AllocatedFunction, PipelineError};
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(|| -> Result<AllocatedFunction, PipelineError> {
        panic!("chaos: injected worker panic")
    })
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "chaos: injected worker panic".to_string());
        Err(PipelineError::Panic(msg))
    });
    BatchItem {
        function: function.name.clone(),
        outcome,
        elapsed: t0.elapsed(),
        trace: None,
    }
}

fn worker_loop(shared: &Shared, worker_index: usize) {
    // One scratch per worker for its whole lifetime: analysis buffers
    // are recycled across every function this worker serves, with
    // output bits untouched (see [`lra_core::batch::WorkerScratch`]).
    let mut scratch = WorkerScratch::new();
    loop {
        let run = shared.queue.pop_run(WORKER_CLAIM);
        if run.is_empty() {
            return; // closed and drained
        }
        for job in run {
            #[cfg(any(test, feature = "chaos"))]
            let fault = shared
                .faults
                .as_ref()
                .map(FaultInjector::next_job)
                .unwrap_or_default();
            #[cfg(any(test, feature = "chaos"))]
            if let Some(extra) = fault.latency {
                std::thread::sleep(extra);
            }

            // Deadline shedding at dequeue: an already-expired request
            // is answered without burning a worker on a result nobody
            // is waiting for. `saturating_duration_since` makes a
            // deadline at-or-before now deterministically zero.
            let remaining = job
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()));
            if remaining.is_some_and(|left| left.is_zero()) {
                shared.metrics.record_deadline_exceeded();
                respond(
                    job.responder,
                    ServeOutcome::DeadlineExpired {
                        function: job.function.name,
                    },
                );
                continue;
            }

            // Watermark degradation: the depth of the queue *behind*
            // this job decides how much effort it gets — above the
            // watermark the cheap-tier-only pipeline keeps the pool
            // draining fast instead of escalating into exact solves.
            let degraded = shared
                .degrade_watermark
                .is_some_and(|w| shared.queue.len() > w);
            let pipeline = if degraded {
                &shared.degraded_pipeline
            } else {
                &shared.pipeline
            };

            // A trace-requesting job arms tracing for exactly its own
            // run (globally-armed tracing — LRA_TRACE — covers every
            // job without this guard). The guard drops right after the
            // item is built.
            let armed = job.trace.then(lra_core::trace::arm);
            #[cfg(any(test, feature = "chaos"))]
            let item = if fault.panic {
                chaos_panic_item(&job.function)
            } else {
                batch::allocate_item_deadline(pipeline, &job.function, &mut scratch, remaining)
            };
            #[cfg(not(any(test, feature = "chaos")))]
            let item =
                batch::allocate_item_deadline(pipeline, &job.function, &mut scratch, remaining);
            drop(armed);

            if degraded {
                shared.metrics.record_degraded();
            }
            if let Some(trace) = &item.trace {
                shared.metrics.record_phases(trace);
            }
            shared
                .metrics
                .record_served(worker_index, job.enqueued.elapsed());
            respond(job.responder, ServeOutcome::Served(item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use lra_core::batch::BatchAllocator;
    use lra_ir::genprog::{random_ssa_function, SsaConfig};
    use lra_targets::{Target, TargetKind};
    use rand::SeedableRng as _;
    use rand_chacha::ChaCha8Rng;

    fn corpus(n: u64) -> Vec<Function> {
        (0..n)
            .map(|seed| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let cfg = SsaConfig {
                    target_instrs: 50,
                    liveness_window: 8,
                    ..SsaConfig::default()
                };
                random_ssa_function(&mut rng, &cfg, format!("chaos::f{seed}"))
            })
            .collect()
    }

    fn pipeline() -> AllocationPipeline {
        AllocationPipeline::new(Target::new(TargetKind::St231)).registers(3)
    }

    #[test]
    fn injected_faults_surface_as_error_rows_never_lost_requests() {
        let fs = corpus(12);
        let plan = FaultPlan::new()
            .seed(7)
            .panic_every(3)
            .latency_every(4, Duration::from_millis(1));
        let service = AllocationService::start(
            ServiceConfig::new(pipeline())
                .workers(2)
                .queue_capacity(16)
                .faults(plan),
        );
        let tickets: Vec<_> = fs
            .iter()
            .map(|f| service.submit(f.clone()).expect("queue has room"))
            .collect();
        let items: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        let report = service.fault_report().expect("a fault plan is installed");
        let metrics = service.shutdown();
        assert_eq!(metrics.served, fs.len() as u64, "faults lose no requests");
        // 12 jobs: one panic per cycle of 3, one latency per cycle of 4.
        assert_eq!(report.panics, 4, "the enabled panic fault must fire");
        assert_eq!(report.latencies, 3, "the enabled latency fault must fire");
        let chaos_rows = items
            .iter()
            .filter(|item| {
                matches!(item.row().outcome.as_ref(),
                         Err(e) if e.contains("chaos: injected"))
            })
            .count() as u64;
        assert_eq!(
            chaos_rows, report.panics,
            "every injected panic is one error row, and nothing else is"
        );
        // Un-faulted requests are byte-identical to the batch path —
        // injection perturbs scheduling, never results.
        let reference = BatchAllocator::new(pipeline()).threads(1).run(&fs);
        for (item, reference) in items.iter().zip(reference.rows()) {
            if item.outcome.is_ok() {
                assert_eq!(format!("{:?}", item.row()), format!("{reference:?}"));
            }
        }
    }

    #[test]
    fn a_fault_free_service_reports_no_faults() {
        let fs = corpus(2);
        let service = AllocationService::start(ServiceConfig::new(pipeline()).workers(1));
        assert!(service.fault_report().is_none(), "no plan, no injector");
        for f in &fs {
            assert!(service.submit(f.clone()).unwrap().wait().outcome.is_ok());
        }
        service.shutdown();
    }
}
