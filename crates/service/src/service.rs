//! The in-process allocation service: a persistent worker pool over a
//! bounded request queue.

use crate::metrics::{MetricsInner, ServiceMetrics};
use crate::queue::{BoundedQueue, PushError};
use lra_core::batch::{self, BatchItem, WorkerScratch};
use lra_core::driver::AllocationPipeline;
use lra_core::portfolio::portfolio_cache;
use lra_ir::Function;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration for [`AllocationService::start`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The pipeline every request runs through (typically a
    /// `Portfolio`-policy pipeline, so the process-wide result cache
    /// serves repeat methods).
    pub pipeline: AllocationPipeline,
    /// Worker threads. `0` resolves via
    /// [`lra_core::batch::default_threads`].
    pub workers: usize,
    /// Request-queue capacity: submissions beyond it are rejected
    /// with [`SubmitError::QueueFull`] (explicit backpressure).
    pub queue_capacity: usize,
}

/// Default queue capacity: deep enough that normal bursts never see a
/// rejection, shallow enough that a stalled worker pool surfaces as
/// backpressure (not as unbounded memory growth).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

impl ServiceConfig {
    /// A config running `pipeline` with the default worker count and
    /// queue capacity.
    pub fn new(pipeline: AllocationPipeline) -> Self {
        ServiceConfig {
            pipeline,
            workers: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }

    /// Sets the worker-thread count (`0` = default).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "a zero-capacity queue rejects everything");
        self.queue_capacity = n;
        self
    }
}

/// Why a submission was not accepted. The function is **not** lost —
/// both variants hand it back so the caller can retry or fail over.
#[derive(Debug)]
pub enum SubmitError {
    /// The request queue is at capacity — the server is saturated and
    /// the caller should back off and retry ([`AllocationService`]
    /// never blocks a submitter to hide overload).
    QueueFull {
        /// The rejected function, returned to the caller.
        function: Function,
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service is draining for shutdown; no new work is accepted.
    ShuttingDown {
        /// The rejected function, returned to the caller.
        function: Function,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, .. } => {
                write!(f, "queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown { .. } => write!(f, "service is shutting down"),
        }
    }
}

/// How a completed [`BatchItem`] gets back to the submitter.
enum Responder {
    /// An in-process ticket wait.
    Channel(mpsc::Sender<BatchItem>),
    /// An arbitrary completion callback (the TCP front end writes the
    /// response line from it, on the worker thread).
    Callback(Box<dyn FnOnce(BatchItem) + Send>),
}

struct Job {
    function: Function,
    responder: Responder,
    enqueued: Instant,
}

struct Shared {
    queue: BoundedQueue<Job>,
    pipeline: AllocationPipeline,
    metrics: MetricsInner,
    workers: usize,
}

/// A pending request's receipt: [`Ticket::wait`] blocks until the
/// worker pool finishes this request.
pub struct Ticket {
    rx: mpsc::Receiver<BatchItem>,
}

impl Ticket {
    /// Blocks until the request completes and returns its item. Items
    /// are identical to what [`lra_core::batch::BatchAllocator`]
    /// produces for the same function and pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the worker processing this request panicked so hard
    /// the response was never sent (the pipeline itself is
    /// panic-caught, so this indicates a bug in the service).
    pub fn wait(self) -> BatchItem {
        self.rx.recv().expect("service dropped an accepted request")
    }
}

/// A long-lived allocation server: accepted [`Function`]s flow through
/// a bounded queue into a persistent worker pool running one
/// [`AllocationPipeline`]; results come back as [`BatchItem`]s.
///
/// # Contracts
///
/// * **Backpressure, not blocking**: [`AllocationService::submit`]
///   returns [`SubmitError::QueueFull`] instead of stalling.
/// * **Lossless shutdown**: every accepted request is served before
///   [`AllocationService::shutdown`] returns.
/// * **Batch-identical output**: each item is produced by
///   [`lra_core::batch::allocate_item`] — the same per-item engine as
///   [`lra_core::batch::BatchAllocator`] — so reports are
///   byte-identical to a batch run at any worker count.
///
/// # Example
///
/// ```
/// use lra_core::driver::AllocationPipeline;
/// use lra_ir::builder::FunctionBuilder;
/// use lra_service::{AllocationService, ServiceConfig};
/// use lra_targets::{Target, TargetKind};
///
/// let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231)).registers(2);
/// let service = AllocationService::start(ServiceConfig::new(pipeline).workers(2));
/// let mut b = FunctionBuilder::new("demo");
/// let e = b.entry_block();
/// let x = b.op(e, &[]);
/// b.op(e, &[x]);
/// let ticket = service.submit(b.finish()).expect("queue has room");
/// assert!(ticket.wait().outcome.is_ok());
/// let metrics = service.shutdown();
/// assert_eq!(metrics.served, 1);
/// ```
pub struct AllocationService {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl AllocationService {
    /// Starts the worker pool and returns the running service.
    pub fn start(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            batch::default_threads()
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            pipeline: cfg.pipeline,
            metrics: MetricsInner::new(portfolio_cache().stats()),
            workers,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        AllocationService {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Submits one function, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after shutdown began. The
    /// function is returned inside the error either way.
    pub fn submit(&self, function: Function) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(function, Responder::Channel(tx))?;
        Ok(Ticket { rx })
    }

    /// Submits one function with a completion callback instead of a
    /// ticket. The callback runs **on the worker thread** right after
    /// the pipeline finishes — keep it short (the TCP front end uses
    /// it to write one response line).
    ///
    /// # Errors
    ///
    /// Same rejections as [`AllocationService::submit`].
    pub fn submit_with(
        &self,
        function: Function,
        on_done: impl FnOnce(BatchItem) + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.enqueue(function, Responder::Callback(Box::new(on_done)))
    }

    fn enqueue(&self, function: Function, responder: Responder) -> Result<(), SubmitError> {
        let job = Job {
            function,
            responder,
            enqueued: Instant::now(),
        };
        self.shared.queue.try_push(job).map_err(|e| {
            self.shared.metrics.record_rejected();
            match e {
                PushError::Full(job) => SubmitError::QueueFull {
                    function: job.function,
                    capacity: self.shared.queue.capacity(),
                },
                PushError::Closed(job) => SubmitError::ShuttingDown {
                    function: job.function,
                },
            }
        })
    }

    /// Convenience driver: pushes every function through the service
    /// (retrying `queue_full` rejections with a tiny backoff, so the
    /// call exercises real backpressure when the corpus exceeds the
    /// queue) and returns the items **in input order** — the shape
    /// [`lra_core::batch::BatchAllocator::run`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the service shuts down while this call is submitting.
    pub fn run_all(&self, functions: &[Function]) -> Vec<BatchItem> {
        let mut tickets = Vec::with_capacity(functions.len());
        for f in functions {
            let mut function = f.clone();
            loop {
                match self.submit(function) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(SubmitError::QueueFull { function: back, .. }) => {
                        function = back;
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Err(SubmitError::ShuttingDown { .. }) => {
                        panic!("service shut down mid-run_all")
                    }
                }
            }
        }
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// A snapshot of the server's counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.metrics.snapshot(
            self.shared.queue.high_water(),
            self.shared.queue.capacity(),
            self.shared.workers,
            portfolio_cache().stats(),
        )
    }

    /// Requests currently queued (excluding in-flight work).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Graceful shutdown: stops accepting work, serves everything
    /// already accepted, joins the workers, and returns the final
    /// metrics. Idempotent — later calls just return a fresh snapshot.
    pub fn shutdown(&self) -> ServiceMetrics {
        self.shared.queue.close();
        let handles = std::mem::take(&mut *self.handles.lock().expect("service handles"));
        for h in handles {
            let _ = h.join();
        }
        self.metrics()
    }
}

impl Drop for AllocationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Most jobs one worker claims per queue-lock acquisition. Small
/// enough that a burst still spreads across the pool (and `pop_run`'s
/// half rule tightens that further), large enough that a backed-up
/// queue costs one lock round-trip per few jobs instead of per job.
const WORKER_CLAIM: usize = 4;

fn worker_loop(shared: &Shared) {
    // One scratch per worker for its whole lifetime: analysis buffers
    // are recycled across every function this worker serves, with
    // output bits untouched (see [`lra_core::batch::WorkerScratch`]).
    let mut scratch = WorkerScratch::new();
    loop {
        let run = shared.queue.pop_run(WORKER_CLAIM);
        if run.is_empty() {
            return; // closed and drained
        }
        for job in run {
            let item = batch::allocate_item_with(&shared.pipeline, &job.function, &mut scratch);
            shared.metrics.record_served(job.enqueued.elapsed());
            match job.responder {
                Responder::Channel(tx) => {
                    // A submitter that dropped its ticket no longer
                    // wants the answer; the work still counted as
                    // served.
                    let _ = tx.send(item);
                }
                Responder::Callback(cb) => {
                    // A panicking callback (user code) must not kill
                    // the worker: the queue behind it still holds
                    // accepted requests the drain contract promises to
                    // serve. The panic message still reaches stderr
                    // via the process panic hook.
                    let _ =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || cb(item)));
                }
            }
        }
    }
}
