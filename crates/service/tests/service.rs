//! End-to-end tests for the allocation service: batch byte-identity,
//! concurrent-submitter determinism, backpressure, lossless drain,
//! and the TCP front end.

use lra_core::batch::{render_rows, BatchAllocator, BatchItem};
use lra_core::driver::AllocationPipeline;
use lra_core::pipeline::InstanceKind;
use lra_core::portfolio::PortfolioConfig;
use lra_ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra_ir::Function;
use lra_service::{serve, AllocationService, Client, ServeOutcome, ServiceConfig, SubmitError};
use lra_targets::{Target, TargetKind};
use rand::SeedableRng as _;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

fn ssa_corpus(n: u64) -> Vec<Function> {
    (0..n)
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let cfg = SsaConfig {
                target_instrs: 60,
                liveness_window: 10,
                ..SsaConfig::default()
            };
            random_ssa_function(&mut rng, &cfg, format!("svc::f{seed}"))
        })
        .collect()
}

fn jit_corpus(n: u64) -> Vec<Function> {
    (0..n)
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            let cfg = JitConfig {
                vars: 30,
                blocks: 12,
                ..JitConfig::default()
            };
            random_jit_function(&mut rng, &cfg, format!("svc::m{seed}"))
        })
        .collect()
}

fn pipeline() -> AllocationPipeline {
    AllocationPipeline::new(Target::new(TargetKind::St231)).registers(3)
}

fn portfolio_pipeline() -> AllocationPipeline {
    AllocationPipeline::new(Target::new(TargetKind::ArmCortexA8))
        .instance_kind(InstanceKind::PreciseGraph)
        .registers(4)
        .portfolio(PortfolioConfig::default())
}

#[test]
fn service_items_are_byte_identical_to_a_batch_run_at_any_worker_count() {
    let fs = ssa_corpus(8);
    let reference = BatchAllocator::new(pipeline()).threads(1).run(&fs).render();
    for workers in [1, 2, 4] {
        let service = AllocationService::start(ServiceConfig::new(pipeline()).workers(workers));
        let items = service.run_all(&fs);
        let rows: Vec<_> = items.iter().map(BatchItem::row).collect();
        assert_eq!(
            render_rows(&rows),
            reference,
            "{workers} workers must render like the batch path"
        );
        let metrics = service.shutdown();
        assert_eq!(metrics.served, fs.len() as u64);
        assert_eq!(metrics.workers, workers);
    }
}

#[test]
fn concurrent_submitters_get_deterministic_per_request_reports() {
    // The same request set pushed from several threads at several
    // worker counts must yield identical per-request reports — order
    // of arrival at the queue must not leak into any result.
    let fs = Arc::new(jit_corpus(10));
    let reference: Vec<String> = BatchAllocator::new(portfolio_pipeline())
        .threads(1)
        .run(&fs)
        .rows()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    for workers in [1, 3] {
        let service = Arc::new(AllocationService::start(
            ServiceConfig::new(portfolio_pipeline()).workers(workers),
        ));
        let mut submitters = Vec::new();
        for t in 0..2 {
            let service = Arc::clone(&service);
            let fs = Arc::clone(&fs);
            submitters.push(std::thread::spawn(move || {
                // Thread 0 takes even indices, thread 1 odd — together
                // they cover the set, interleaved on the queue.
                let mut got = Vec::new();
                for (k, f) in fs.iter().enumerate().filter(|(k, _)| k % 2 == t) {
                    let mut function = f.clone();
                    let ticket = loop {
                        match service.submit(function) {
                            Ok(ticket) => break ticket,
                            Err(SubmitError::QueueFull { function: back, .. }) => {
                                function = back;
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(e) => panic!("unexpected rejection: {e}"),
                        }
                    };
                    got.push((k, ticket.wait()));
                }
                got
            }));
        }
        let mut results: Vec<(usize, BatchItem)> = submitters
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect();
        results.sort_by_key(|&(k, _)| k);
        for (k, item) in &results {
            assert_eq!(
                format!("{:?}", item.row()),
                reference[*k],
                "request {k} at {workers} workers"
            );
        }
        service.shutdown();
    }
}

#[test]
fn full_queue_rejects_and_recovers() {
    // One worker, blocked inside a completion callback: the queue
    // fills deterministically, the next submission is rejected with
    // queue_full, and draining resumes once the callback releases.
    let fs = ssa_corpus(4);
    let service =
        AllocationService::start(ServiceConfig::new(pipeline()).workers(1).queue_capacity(2));
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    service
        .submit_with(fs[0].clone(), move |_| {
            entered_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .expect("empty queue accepts");
    // Wait until the worker is inside the callback — the queue is now
    // empty and the only worker is pinned.
    entered_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let t1 = service.submit(fs[1].clone()).expect("slot 1 of 2");
    let t2 = service.submit(fs[2].clone()).expect("slot 2 of 2");
    match service.submit(fs[3].clone()) {
        Err(SubmitError::QueueFull { capacity, function }) => {
            assert_eq!(capacity, 2);
            assert_eq!(function.name, fs[3].name, "the function comes back");
        }
        other => panic!("expected QueueFull, got {:?}", other.map(|_| "ticket")),
    }
    assert_eq!(service.queue_depth(), 2);
    release_tx.send(()).unwrap();
    assert!(t1.wait().outcome.is_ok());
    assert!(t2.wait().outcome.is_ok());
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 3);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.queue_high_water, 2);
}

#[test]
fn panicking_callback_does_not_kill_the_worker_or_the_drain_contract() {
    let fs = ssa_corpus(3);
    let service =
        AllocationService::start(ServiceConfig::new(pipeline()).workers(1).queue_capacity(8));
    service
        .submit_with(fs[0].clone(), |_| panic!("callback bug"))
        .expect("accepted");
    // The single worker must survive the panic and keep serving.
    let t1 = service.submit(fs[1].clone()).expect("accepted");
    let t2 = service.submit(fs[2].clone()).expect("accepted");
    assert!(t1.wait().outcome.is_ok());
    assert!(t2.wait().outcome.is_ok());
    let metrics = service.shutdown();
    assert_eq!(
        metrics.served, 3,
        "the panicking request still counts as served"
    );
}

#[test]
fn shutdown_drains_every_accepted_request() {
    let fs = ssa_corpus(6);
    let service =
        AllocationService::start(ServiceConfig::new(pipeline()).workers(2).queue_capacity(16));
    let tickets: Vec<_> = fs
        .iter()
        .map(|f| service.submit(f.clone()).expect("queue has room"))
        .collect();
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 6, "no accepted request may be dropped");
    for t in tickets {
        assert!(t.wait().outcome.is_ok(), "drained results stay readable");
    }
    // After shutdown, new submissions are refused.
    match service.submit(fs[0].clone()) {
        Err(SubmitError::ShuttingDown { .. }) => {}
        other => panic!("expected ShuttingDown, got {:?}", other.map(|_| "ticket")),
    }
}

#[test]
fn tcp_end_to_end_matches_batch_and_serves_repeats_from_cache() {
    let fs = jit_corpus(8);
    let reference = BatchAllocator::new(portfolio_pipeline())
        .threads(1)
        .run(&fs);
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(portfolio_pipeline())
            .workers(2)
            .queue_capacity(16),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect_retry(&addr, 10, Duration::from_millis(50)).unwrap();

    let cold = client.allocate_all(&fs).unwrap();
    assert_eq!(
        cold.render(),
        reference.render(),
        "TCP round-trip must be byte-identical to the local batch"
    );

    // Second pass: identical output, served from the shared cache.
    let warm = client.allocate_all(&fs).unwrap();
    assert_eq!(
        warm.render(),
        cold.render(),
        "cache-warm must equal cache-cold"
    );

    let stats = client.stats().unwrap();
    let get = |k: &str| {
        stats[k]
            .as_u64()
            .unwrap_or_else(|| panic!("stats field {k}"))
    };
    assert_eq!(get("served"), 2 * fs.len() as u64);
    assert!(
        get("cache_hits") >= fs.len() as u64,
        "warm pass should hit the shared cache ({} hits)",
        get("cache_hits")
    );
    assert!(get("p50_us") > 0);

    client.shutdown().unwrap();
    let metrics = server.wait();
    assert_eq!(metrics.served, 2 * fs.len() as u64);
}

#[test]
fn tcp_backpressure_rejects_then_completes_the_whole_corpus() {
    // Queue capacity far below the corpus size with a single worker:
    // the pipelined client must see queue_full rejections and still
    // deliver every row, identical to the batch path.
    let fs = jit_corpus(12);
    let reference = BatchAllocator::new(portfolio_pipeline())
        .threads(1)
        .run(&fs);
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(portfolio_pipeline())
            .workers(1)
            .queue_capacity(2),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let result = client.allocate_all(&fs).unwrap();
    assert_eq!(result.render(), reference.render());
    assert!(
        result.retries > 0,
        "12 pipelined requests against capacity 2 must hit backpressure"
    );
    client.shutdown().unwrap();
    let metrics = server.wait();
    assert_eq!(metrics.served, fs.len() as u64);
    assert_eq!(metrics.rejected, result.retries);
    assert!(metrics.queue_high_water <= 2);
}

#[test]
fn bad_requests_get_error_responses_without_killing_the_connection() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(pipeline()).workers(1).queue_capacity(4),
    )
    .unwrap();
    let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| {
        let mut w = &stream;
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    assert!(send("not json").contains("bad request"));
    assert!(send("{\"op\":\"alloc\",\"id\":1}").contains("alloc without fn"));
    assert!(send("{\"op\":\"alloc\",\"id\":2,\"fn\":\"garbage\"}").contains("bad function"));
    assert!(send("{\"op\":\"frob\",\"id\":3}").contains("unknown op"));
    assert!(send("{\"op\":\"alloc\"}").contains("without id"));
    // A tiny request claiming four billion values must be refused
    // before any per-value table gets sized from it.
    let huge = "fn dos values=4000000000 entry=0 params=-\\nbb0: succs=-\\n  op\\nend\\n";
    assert!(
        send(&format!("{{\"op\":\"alloc\",\"id\":4,\"fn\":\"{huge}\"}}")).contains("too large")
    );
    // The connection still works after all that.
    let mut client_line =
        lra_service::proto::alloc_request(9, &lra_ir::textio::print(&ssa_corpus(1)[0]));
    client_line.push('\n');
    let mut w = &stream;
    w.write_all(client_line.as_bytes()).unwrap();
    w.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(
        resp.contains("\"ok\":true"),
        "healthy request still served: {resp}"
    );
}

#[test]
fn a_silent_client_cannot_pin_a_handler_thread() {
    // A connection that never sends a frame must be closed once the
    // read timeout lapses — otherwise one idle socket pins a handler
    // thread forever.
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(pipeline())
            .workers(1)
            .read_timeout(Duration::from_millis(100)),
    )
    .unwrap();
    let silent = std::net::TcpStream::connect(server.local_addr()).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    let mut reader = std::io::BufReader::new(silent);
    let mut line = String::new();
    let n = std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert_eq!(n, 0, "the server must hang up on us, got {line:?}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "hang-up must come from the read timeout, not test patience"
    );
    // The freed handler capacity still serves real clients.
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    let result = client.allocate_all(&ssa_corpus(1)).unwrap();
    assert!(result.rows[0].outcome.is_ok());
}

#[test]
fn malformed_frames_get_error_responses_without_killing_the_connection() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(pipeline()).workers(1).queue_capacity(4),
    )
    .unwrap();
    let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| {
        let mut w = &stream;
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    // Fuzz-ish corpus: every frame is valid UTF-8 (a non-UTF-8 byte
    // stream errors the buffered reader and closes the connection
    // before the parser sees it) but broken at the JSON layer in a
    // different way. Each must come back as an in-band error.
    let bad = [
        "{",                                                    // truncated object
        "\"just a string\"",                                    // non-object root
        "{\"op\":\"alloc\",\"id\":5,\"fn\":\"x\\u00\"}",        // truncated \u escape
        "{\"op\":\"alloc\",\"id\":6,\"fn\":\"\\q\"}",           // unknown escape
        "{\"op\":\"alloc\",\"id\":7,\"fn\":{}}",                // fn is not a string
        "{\"op\":[\"alloc\"],\"id\":8}",                        // op is not a string
        "{\"op\":\"alloc\",\"id\":-3}",                         // negative id
        "{\"op\":\"alloc\",\"id\":99999999999999999999999999}", // id overflows u64
        "{\"op\":\"alloc\",\"id\":9,\"fn\":\"fn\"} trailing",   // trailing garbage
    ];
    for frame in bad {
        let resp = send(frame);
        assert!(
            resp.contains("\"ok\":false"),
            "{frame:?} must get an error response, got {resp:?}"
        );
    }
    // A non-numeric deadline is ignored, not fatal: the request runs.
    let text = lra_ir::textio::print(&ssa_corpus(1)[0]);
    let with_bad_deadline =
        lra_service::proto::alloc_request(41, &text).replacen("{", "{\"deadline_ms\":\"soon\",", 1);
    assert!(send(&with_bad_deadline).contains("\"ok\":true"));
    // And the connection survived all of the above.
    assert!(send(&lra_service::proto::alloc_request(42, &text)).contains("\"ok\":true"));
}

#[test]
fn shutdown_under_load_answers_every_accepted_request_exactly_once() {
    // Concurrent submitters race a mid-stream shutdown: whatever was
    // accepted before the queue closed must be answered exactly once,
    // at every worker count.
    for workers in [1, 2, 4] {
        let fs = Arc::new(ssa_corpus(12));
        let service = Arc::new(AllocationService::start(
            ServiceConfig::new(pipeline())
                .workers(workers)
                .queue_capacity(4),
        ));
        let answered = Arc::new(AtomicU64::new(0));
        let submitters: Vec<_> = (0..3)
            .map(|t| {
                let service = Arc::clone(&service);
                let fs = Arc::clone(&fs);
                let answered = Arc::clone(&answered);
                std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    for f in fs.iter().cycle().skip(t).take(40) {
                        let answered = Arc::clone(&answered);
                        match service.submit_with(f.clone(), move |_| {
                            answered.fetch_add(1, Ordering::SeqCst);
                        }) {
                            Ok(()) => accepted += 1,
                            Err(SubmitError::QueueFull { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(SubmitError::ShuttingDown { .. }) => break,
                        }
                    }
                    accepted
                })
            })
            .collect();
        // Let the submitters get some work in flight, then pull the rug.
        std::thread::sleep(Duration::from_millis(20));
        let metrics = service.shutdown();
        let accepted: u64 = submitters
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .sum();
        assert!(accepted > 0, "the race must actually accept something");
        assert_eq!(
            answered.load(Ordering::SeqCst),
            accepted,
            "{workers} workers: accepted and answered must match exactly"
        );
        assert_eq!(metrics.served, accepted);
    }
}

#[test]
fn expired_deadlines_are_shed_at_dequeue_not_run() {
    let fs = ssa_corpus(3);
    let service =
        AllocationService::start(ServiceConfig::new(pipeline()).workers(1).queue_capacity(8));
    // Pin the only worker so the doomed request waits in the queue
    // past its (already expired) deadline.
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    service
        .submit_with(fs[0].clone(), move |_| {
            entered_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .expect("accepted");
    entered_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let doomed = service
        .submit_deadline(fs[1].clone(), Some(Instant::now()))
        .expect("accepted");
    let healthy = service.submit(fs[2].clone()).expect("accepted");
    release_tx.send(()).unwrap();
    match doomed.wait_outcome() {
        ServeOutcome::DeadlineExpired { function } => assert_eq!(function, fs[1].name),
        ServeOutcome::Served(_) => panic!("an expired deadline must not reach the pipeline"),
    }
    assert!(
        healthy.wait().outcome.is_ok(),
        "requests behind the shed one are unaffected"
    );
    let metrics = service.shutdown();
    assert_eq!(metrics.deadline_exceeded, 1);
    assert_eq!(metrics.served, 2, "a shed request does not count as served");
}

#[test]
fn tcp_deadlines_come_back_as_deadline_exceeded_rows() {
    // deadline_ms:0 anchors the deadline at parse time, so by the time
    // a worker dequeues the job it has always expired — deterministic.
    let fs = ssa_corpus(4);
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(pipeline()).workers(1).queue_capacity(8),
    )
    .unwrap();
    let mut client = Client::connect(&server.local_addr().to_string())
        .unwrap()
        .deadline_ms(Some(0));
    let result = client.allocate_all(&fs).unwrap();
    for (row, f) in result.rows.iter().zip(&fs) {
        assert_eq!(row.function, f.name);
        assert_eq!(
            row.outcome.as_ref().err().map(String::as_str),
            Some("deadline_exceeded")
        );
    }
    client.shutdown().unwrap();
    let metrics = server.wait();
    assert_eq!(metrics.deadline_exceeded, fs.len() as u64);
    assert_eq!(metrics.served, 0);
}

#[test]
fn overload_degrades_to_the_cheap_tier_and_stays_available() {
    // With the watermark at 1 and the only worker pinned, a burst
    // leaves the queue deep enough that dequeued jobs run degraded —
    // but every one of them is still answered successfully.
    let fs = jit_corpus(6);
    let service = AllocationService::start(
        ServiceConfig::new(portfolio_pipeline())
            .workers(1)
            .queue_capacity(16)
            .degrade_watermark(Some(1)),
    );
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    service
        .submit_with(fs[0].clone(), move |_| {
            entered_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .expect("accepted");
    entered_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let tickets: Vec<_> = fs[1..]
        .iter()
        .map(|f| service.submit(f.clone()).expect("burst fits the queue"))
        .collect();
    release_tx.send(()).unwrap();
    for t in tickets {
        assert!(
            t.wait().outcome.is_ok(),
            "degraded service still answers correctly"
        );
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, fs.len() as u64);
    assert!(
        metrics.degraded > 0,
        "a deep queue above the watermark must trip degradation"
    );
    assert!(
        metrics.degraded < metrics.served,
        "the tail of the burst drains below the watermark at full tier"
    );
}

#[test]
fn tracing_on_vs_off_is_byte_identical_for_batch_output() {
    // The determinism contract of lra_core::trace: arming the recorder
    // (guard or LRA_TRACE env) must not move a single output byte.
    let fs = jit_corpus(6);
    let batch = BatchAllocator::new(portfolio_pipeline()).threads(1);
    let reference = batch.run(&fs);
    assert!(
        reference.items.iter().all(|i| i.trace.is_none()),
        "tracing off: no traces collected"
    );

    // Door 1: the RAII guard.
    let armed = {
        let _on = lra_core::trace::arm();
        batch.run(&fs)
    };
    assert_eq!(
        armed.render(),
        reference.render(),
        "armed tracing must not change the rendered report"
    );
    for item in &armed.items {
        let trace = item.trace.as_ref().expect("armed run collects per item");
        assert_eq!(
            trace.phases[lra_core::trace::Phase::Pipeline as usize].count,
            1
        );
        assert!(trace.total_self_ns() > 0);
    }

    // Door 2: the LRA_TRACE environment variable, re-probed after a
    // reset. Safe even though other tests run concurrently: tracing
    // never changes output bytes, so at worst they also collect.
    lra_core::trace::reset_for_tests();
    std::env::set_var("LRA_TRACE", "1");
    let from_env = batch.run(&fs);
    std::env::remove_var("LRA_TRACE");
    lra_core::trace::reset_for_tests();
    assert_eq!(
        from_env.render(),
        reference.render(),
        "LRA_TRACE=1 must not change the rendered report"
    );
    assert!(
        from_env.items.iter().all(|i| i.trace.is_some()),
        "LRA_TRACE=1 collects per item"
    );
}

#[test]
fn traced_submissions_return_traces_and_identical_rows() {
    let fs = jit_corpus(5);
    let reference: Vec<String> = BatchAllocator::new(portfolio_pipeline())
        .threads(1)
        .run(&fs)
        .rows()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    let service = AllocationService::start(ServiceConfig::new(portfolio_pipeline()).workers(2));
    for (k, f) in fs.iter().enumerate() {
        let item = service
            .submit_traced(f.clone(), None)
            .expect("queue has room")
            .wait();
        assert_eq!(
            format!("{:?}", item.row()),
            reference[k],
            "traced request {k} must produce the batch row"
        );
        let trace = item.trace.as_ref().expect("traced submission collects");
        assert_eq!(
            trace.phases[lra_core::trace::Phase::Pipeline as usize].count,
            1
        );
    }
    // Untraced submissions on the same service stay trace-free.
    let plain = service.submit(fs[0].clone()).expect("accepted").wait();
    assert!(
        plain.trace.is_none(),
        "untraced submissions collect nothing"
    );
    let metrics = service.shutdown();
    // The per-phase aggregates saw every traced request.
    let allocate = metrics.phases[lra_core::trace::Phase::Allocate as usize];
    assert!(
        allocate.count >= fs.len() as u64,
        "allocate spans must aggregate into the service metrics"
    );
    assert!(allocate.self_ns > 0);
}

#[test]
fn tcp_trace_requests_echo_ids_and_carry_flat_phase_timings() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let fs = jit_corpus(2);
    let server = serve(
        "127.0.0.1:0",
        ServiceConfig::new(portfolio_pipeline())
            .workers(1)
            .queue_capacity(8),
    )
    .unwrap();
    let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| {
        let mut w = &stream;
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    let text = lra_ir::textio::print(&fs[0]);

    // Baseline: the untraced response for the same function.
    let plain = send(&lra_service::proto::alloc_request(1, &text));
    assert!(plain.contains("\"ok\":true"));
    assert!(!plain.contains("trace_id"));

    // Traced request: id echoed, flat per-phase self-times appended.
    let traced = send(&lra_service::proto::alloc_request_full(
        2,
        &text,
        None,
        Some("req-abc/1"),
        true,
    ));
    assert!(traced.contains("\"ok\":true"), "traced response: {traced}");
    assert!(traced.contains("\"trace_id\":\"req-abc/1\""));
    assert!(traced.contains("\"trace_total_us\":"));
    assert!(traced.contains("\"phase_allocate_us\":"));
    assert!(traced.contains("\"trace_rounds\":"));
    // Still a flat JSON object the protocol parser accepts as a row,
    // and the row itself is byte-identical to the untraced one.
    let row_of = |resp: &str| match lra_service::proto::parse_response(resp.trim_end()).unwrap() {
        lra_service::proto::Response::Row { row, .. } => format!("{row:?}"),
        other => panic!("expected a row, got {other:?}"),
    };
    assert_eq!(row_of(&traced), row_of(&plain));

    // trace_id without trace:true echoes the id and nothing else.
    let tagged = send(&lra_service::proto::alloc_request_full(
        3,
        &text,
        None,
        Some("tag-only"),
        false,
    ));
    assert!(tagged.contains("\"trace_id\":\"tag-only\""));
    assert!(!tagged.contains("phase_allocate_us"));
    assert_eq!(row_of(&tagged), row_of(&plain));

    // The metrics op returns a Prometheus exposition ending in # EOF,
    // with the traced request's phases aggregated.
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    let exposition = client.metrics().unwrap();
    assert!(exposition.ends_with("# EOF\n"));
    assert!(exposition.contains("lra_requests_served_total 3"));
    assert!(exposition.contains("lra_service_time_us_bucket"));
    assert!(exposition.contains("lra_phase_self_us_total{phase=\"allocate\"}"));
    client.shutdown().unwrap();
    server.wait();
}
