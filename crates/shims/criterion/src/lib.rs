//! Offline stand-in for `criterion`.
//!
//! Provides the builder/macro surface the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`criterion_group!`]/[`criterion_main!`] — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark runs one warm-up pass plus a small number of timed passes
//! (capped; override with the `CRITERION_SHIM_SAMPLES` environment
//! variable) and prints the mean time per iteration.
//!
//! Results are lost when the process exits unless `CRITERION_SHIM_JSON`
//! names a file: then every benchmark also appends one JSON line
//! (`{"group": …, "bench": …, "mean_ns": …, "iters": …}`, plus any
//! [`BenchmarkGroup::metric`] columns), so bench numbers can be
//! persisted in-tree alongside `BENCH_batch.json` (see the repo's
//! `BENCH_*.json` convention).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("## bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            samples: default_samples(),
            throughput: None,
            metrics: Vec::new(),
        }
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    metrics: Vec<(String, u64)>,
}

impl BenchmarkGroup<'_> {
    /// Requests `n` samples (capped at the shim's budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.min(default_samples());
        self
    }

    /// Declares the work per iteration for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Attaches a bench-computed side metric (e.g. a resident-memory
    /// estimate) to every subsequent benchmark of this group: each
    /// persisted JSON line gains a `"key": value` column. Shim
    /// extension — upstream criterion has no equivalent, so benches
    /// that must also compile there should gate calls on the shim.
    pub fn metric(&mut self, key: impl Into<String>, value: u64) -> &mut Self {
        let key = key.into();
        self.metrics.retain(|(k, _)| k != &key);
        self.metrics.push((key, value));
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples.max(1),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        let rate = match (&self.throughput, per_iter.as_secs_f64()) {
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("  ({:.0} elem/s)", *n as f64 / s)
            }
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("  ({:.0} B/s)", *n as f64 / s)
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: {per_iter:?}/iter over {} iters{rate}",
            self.name, bencher.iters
        );
        persist_json(&self.name, &id, per_iter, bencher.iters, &self.metrics);
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Appends one JSON line per benchmark to the file named by
/// `CRITERION_SHIM_JSON`, if set, with any group-level
/// [`BenchmarkGroup::metric`] columns after the timing fields.
/// Failures are silent: persistence is best-effort and must never fail
/// a bench run.
fn persist_json(
    group: &str,
    id: &str,
    per_iter: Duration,
    iters: usize,
    metrics: &[(String, u64)],
) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let extra: String = metrics
        .iter()
        .map(|(k, v)| format!(", \"{}\": {v}", escape(k)))
        .collect();
    let line = format!(
        "{{\"group\": \"{}\", \"bench\": \"{}\", \"mean_ns\": {}, \"iters\": {}{extra}}}\n",
        escape(group),
        escape(id),
        per_iter.as_nanos(),
        iters
    );
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Per-benchmark iteration driver.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let _warmup = routine();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

/// A parameterised benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made from a parameter value alone.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id made from a function name and a parameter value.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Work performed per iteration, for derived throughput rates.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Opaque hint to the optimiser (pass-through in the shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
