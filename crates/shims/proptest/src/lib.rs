//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! attribute, integer-range strategies (`low..high`, `low..=high`),
//! [`ProptestConfig::with_cases`], and the [`prop_assert!`] /
//! [`prop_assert_eq!`] assertion macros. Inputs are drawn from a
//! seeded ChaCha8 stream (per-test seed derived from the test name), so
//! failures are reproducible; there is no shrinking — the failing
//! arguments are printed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng as TestRng;

/// Property-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (carries the rendered message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Creates the deterministic generator for one named test.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Draws one value from a range strategy.
pub fn sample<T, S: rand::SampleRange<T>>(strategy: S, rng: &mut TestRng) -> T {
    strategy.sample(rng)
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Declares seeded property tests over range strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::sample($strategy, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed on case {case} with inputs {}: {}",
                            stringify!($name),
                            [$(format!("{}={:?}", stringify!($arg), $arg)),*].join(", "),
                            e.0
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 0u64..100, b in 5usize..=9) {
            prop_assert!(a < 100);
            prop_assert!((5..=9).contains(&b), "b out of range: {b}");
            prop_assert_eq!(b.min(9), b);
        }
    }

    #[test]
    fn reproducible_streams() {
        use rand::Rng as _;
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }
}
