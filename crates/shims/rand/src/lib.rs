//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *subset* of the `rand 0.8` API its code
//! actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait with `gen_range`/`gen_bool`, and [`seq::SliceRandom::shuffle`].
//! Integer sampling is unbiased (modulo rejection); it does not promise
//! stream compatibility with crates-io `rand`, only determinism for a
//! fixed seed, which is all the seeded generators and tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Draws a uniform `u64` below `span` (`span >= 1`), unbiased.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    // Largest prefix of 2^64 that is a multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// An integer type uniformly sampleable over an interval.
pub trait SampleUniform: Sized + Copy {
    /// A uniform sample from `[lo, hi]` (inclusive bounds, `lo <= hi`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// `self - 1` (used to close half-open ranges).
    fn one_less(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full 64-bit range
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }

            fn one_less(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end.one_less(), rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (the `rand::seq` module subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// The `rngs` module subset: a small default generator.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A simple splitmix64-based generator (stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(0..7);
            assert!(a < 7);
            let b: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&b));
            let c: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
