//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha block function with 8 double-rounds and
//! exposes it as [`ChaCha8Rng`] through the workspace's vendored `rand`
//! traits. The keystream is a faithful ChaCha8 stream (RFC 7539 block
//! layout, 64-bit counter), seeded by expanding a `u64` through
//! splitmix64 — deterministic and statistically strong, which is what
//! the seeded program/graph generators need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 double-rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + nonce state words 4..16 of the initial block.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    cursor: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed into a 256-bit key with splitmix64.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn deterministic_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should decorrelate");
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }
}
