//! Target machine models for spill-cost estimation.
//!
//! The paper evaluates on two architectures: the **ST231**, a 4-issue
//! VLIW media processor from STMicroelectronics (compiled with Open64),
//! and the **ARM Cortex-A8** (ARMv7). The allocation algorithms are
//! target-independent; the target only influences
//!
//! * the default number of allocatable registers,
//! * the relative cost of spill loads and stores (latency × issue
//!   width), and
//! * ABI effects: values live across calls must reside in callee-saved
//!   registers or memory, which the cost model reflects with a
//!   call-crossing multiplier.
//!
//! # Examples
//!
//! ```
//! use lra_targets::{Target, TargetKind};
//! let t = Target::new(TargetKind::St231);
//! assert_eq!(t.register_count(), 64);
//! assert!(t.store_cost() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The architectures modelled by the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// STMicroelectronics ST231, a 4-issue VLIW (Open64 back-end in the
    /// paper).
    St231,
    /// ARM Cortex-A8, ARMv7 (the lao-kernels experiments).
    ArmCortexA8,
}

/// A register-file and memory-cost model.
///
/// # Examples
///
/// ```
/// use lra_targets::{Target, TargetKind};
/// let arm = Target::new(TargetKind::ArmCortexA8);
/// assert_eq!(arm.register_count(), 16);
/// assert_eq!(arm.name(), "armv7-cortex-a8");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Target {
    kind: TargetKind,
    registers: u32,
    load_cost: u64,
    store_cost: u64,
    remat_cost: u64,
    call_crossing_multiplier: u64,
}

impl Target {
    /// Creates the model for `kind` with its architectural defaults.
    pub fn new(kind: TargetKind) -> Self {
        match kind {
            // ST231: 64 general-purpose registers; loads have a 3-cycle
            // latency, stores retire through a write buffer.
            TargetKind::St231 => Target {
                kind,
                registers: 64,
                load_cost: 3,
                store_cost: 1,
                remat_cost: 1,
                call_crossing_multiplier: 2,
            },
            // Cortex-A8: 16 GPRs (r0-r15, with sp/lr/pc constrained);
            // L1 load-use latency ≈ 3 cycles.
            TargetKind::ArmCortexA8 => Target {
                kind,
                registers: 16,
                load_cost: 3,
                store_cost: 2,
                remat_cost: 1,
                call_crossing_multiplier: 2,
            },
        }
    }

    /// Overrides the number of allocatable registers (the experiments
    /// sweep R from 1 to 32 regardless of the architectural file size).
    pub fn with_register_count(mut self, registers: u32) -> Self {
        self.registers = registers;
        self
    }

    /// Overrides the memory-access costs. `store_cost = 0` gives the
    /// Appel–George regime where a value may live in memory and
    /// registers simultaneously (used by the live-range-splitting
    /// study).
    pub fn with_memory_costs(mut self, load_cost: u64, store_cost: u64) -> Self {
        self.load_cost = load_cost;
        self.store_cost = store_cost;
        self
    }

    /// Which architecture this models.
    pub fn kind(&self) -> TargetKind {
        self.kind
    }

    /// A short identifier (`st231` or `armv7-cortex-a8`).
    pub fn name(&self) -> &'static str {
        match self.kind {
            TargetKind::St231 => "st231",
            TargetKind::ArmCortexA8 => "armv7-cortex-a8",
        }
    }

    /// The number of allocatable registers.
    pub fn register_count(&self) -> u32 {
        self.registers
    }

    /// Cost of one spill reload, in abstract cycle units.
    pub fn load_cost(&self) -> u64 {
        self.load_cost
    }

    /// Cost of one spill store, in abstract cycle units.
    pub fn store_cost(&self) -> u64 {
        self.store_cost
    }

    /// Cost of recomputing a rematerializable value at a use site, in
    /// abstract cycle units. On both modelled machines a constant (or
    /// simple address arithmetic) re-issues in one slot, so the default
    /// is `1` — strictly cheaper than a reload, which is why the spill
    /// cost model prefers rematerialization whenever it is legal.
    pub fn remat_cost(&self) -> u64 {
        self.remat_cost
    }

    /// Overrides the rematerialization cost (a `remat_cost >= load_cost`
    /// effectively disables the remat preference in the cost model).
    pub fn with_remat_cost(mut self, remat_cost: u64) -> Self {
        self.remat_cost = remat_cost;
        self
    }

    /// Multiplier applied to the spill cost of variables live across a
    /// call site (ABI pressure on caller-saved registers).
    pub fn call_crossing_multiplier(&self) -> u64 {
        self.call_crossing_multiplier
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} registers)", self.name(), self.registers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st231_defaults() {
        let t = Target::new(TargetKind::St231);
        assert_eq!(t.register_count(), 64);
        assert_eq!(t.load_cost(), 3);
        assert_eq!(t.store_cost(), 1);
        assert_eq!(t.name(), "st231");
        assert_eq!(t.kind(), TargetKind::St231);
    }

    #[test]
    fn arm_defaults() {
        let t = Target::new(TargetKind::ArmCortexA8);
        assert_eq!(t.register_count(), 16);
        assert_eq!(t.name(), "armv7-cortex-a8");
    }

    #[test]
    fn register_override() {
        let t = Target::new(TargetKind::St231).with_register_count(8);
        assert_eq!(t.register_count(), 8);
        // Cost model unchanged by the override.
        assert_eq!(t.load_cost(), 3);
    }

    #[test]
    fn remat_is_cheaper_than_a_reload() {
        for kind in [TargetKind::St231, TargetKind::ArmCortexA8] {
            let t = Target::new(kind);
            assert!(t.remat_cost() >= 1);
            assert!(t.remat_cost() < t.load_cost());
        }
        let pinned = Target::new(TargetKind::St231).with_remat_cost(7);
        assert_eq!(pinned.remat_cost(), 7);
    }

    #[test]
    fn call_crossing_multiplier_positive() {
        for kind in [TargetKind::St231, TargetKind::ArmCortexA8] {
            assert!(Target::new(kind).call_crossing_multiplier() >= 1);
        }
    }

    #[test]
    fn display_mentions_name_and_registers() {
        let t = Target::new(TargetKind::ArmCortexA8);
        assert_eq!(format!("{t}"), "armv7-cortex-a8 (16 registers)");
    }
}
