//! The parallel batch driver end to end: build a mixed corpus, fan it
//! across the worker pool, and read the ordered [`BatchReport`] —
//! including a per-item failure that does *not* abort the batch (a
//! non-SSA method under a chordal-only allocator).
//!
//! The printed report is byte-identical at any thread count; only the
//! wall-clock line (stderr in the CLI, last line here) varies.
//!
//! Run with: `cargo run --release --example batch_allocation`

use lra::ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator};
use rand::SeedableRng;

fn main() {
    let mut functions: Vec<lra::ir::Function> = (0..6u64)
        .map(|k| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(100 + k);
            let config = SsaConfig {
                target_instrs: 90,
                liveness_window: 12,
                ..SsaConfig::default()
            };
            random_ssa_function(&mut rng, &config, format!("ssa::f{k}"))
        })
        .collect();
    // One non-SSA intruder: BFPL needs a chordal graph, so this item
    // fails with a per-item error while the rest of the batch runs on.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    functions.insert(
        3,
        random_jit_function(&mut rng, &JitConfig::default(), "jit::intruder"),
    );

    let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231))
        .allocator("BFPL")
        .registers(4);
    let batch = BatchAllocator::new(pipeline).threads(4);
    let report = batch.run(&functions);

    print!("{}", report.render());
    println!();
    println!(
        "ran on {} worker(s) in {:.1} ms (report above is thread-count invariant)",
        report.threads,
        report.elapsed.as_secs_f64() * 1e3
    );
}
