//! Coalescing interaction study (the paper's §8 future work): run the
//! pipeline with coalescing off, conservative (Briggs) and aggressive,
//! and compare moves saved against spill cost — all through the same
//! `AllocationPipeline` entry point.
//!
//! Run with: `cargo run --release --example coalescing`

use lra::ir::genprog::{random_ssa_function, SsaConfig};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, CoalesceMode};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let config = SsaConfig {
        target_instrs: 150,
        branch_percent: 28,
        loop_percent: 14,
        copy_percent: 10, // emit explicit register copies
        ..SsaConfig::default()
    };
    let function = random_ssa_function(&mut rng, &config, "demo::with_copies");
    let target = Target::new(TargetKind::St231);
    let registers = 6;

    println!("function: {} values, R = {registers}", function.value_count);
    println!();
    println!(
        "{:>14} {:>12} {:>12} {:>8} {:>9}",
        "coalescing", "moves saved", "spill cost", "rounds", "verified"
    );
    for (label, mode) in [
        ("off", CoalesceMode::Off),
        ("conservative", CoalesceMode::Conservative),
        ("aggressive", CoalesceMode::Aggressive),
    ] {
        // BFPL requires chordality; rounds whose aggressive quotient
        // loses it fall back to the uncoalesced graph automatically.
        let report = AllocationPipeline::new(target)
            .allocator("BFPL")
            .registers(registers)
            .coalescing(mode)
            .run(&function)
            .expect("BFPL handles SSA functions");
        println!(
            "{:>14} {:>12} {:>12} {:>8} {:>9}",
            label,
            report.saved_moves,
            report.spill_cost,
            report.rounds,
            report.verdict.is_feasible(),
        );
    }
    println!();
    println!(
        "coalescing removes move-cost units but lengthens live ranges;\n\
         the spill-cost column shows the price at R = {registers}."
    );
}
