//! Coalescing interaction study (the paper's §8 future work): extract
//! copy/φ affinities from a generated SSA function, coalesce the
//! interference graph aggressively and conservatively, and compare the
//! spilling behaviour of the layered allocator on all three graphs.
//!
//! Run with: `cargo run --release --example coalescing`

use layered_allocation::core::coalesce::{aggressive_coalesce, conservative_coalesce};
use layered_allocation::core::layered::Layered;
use layered_allocation::core::pipeline::{build_instance, copy_affinities, InstanceKind};
use layered_allocation::core::problem::Allocator;
use layered_allocation::ir::genprog::{random_ssa_function, SsaConfig};
use layered_allocation::targets::{Target, TargetKind};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let config = SsaConfig {
        target_instrs: 150,
        branch_percent: 28,
        loop_percent: 14,
        copy_percent: 10, // emit explicit register copies
        ..SsaConfig::default()
    };
    let function = random_ssa_function(&mut rng, &config, "demo::with_copies");
    let target = Target::new(TargetKind::St231);
    let instance = build_instance(&function, &target, InstanceKind::PreciseGraph);
    let affinities = copy_affinities(&function);

    println!(
        "function: {} values, {} interferences, {} copy/φ affinities",
        instance.vertex_count(),
        instance.graph().edge_count(),
        affinities.len(),
    );

    let registers = 6;
    let aggressive = aggressive_coalesce(&instance, &affinities);
    let conservative = conservative_coalesce(&instance, &affinities, registers);

    println!();
    println!(
        "{:>14} {:>9} {:>9} {:>12} {:>12}",
        "graph", "vertices", "chordal", "moves saved", "BFPL spill"
    );
    for (name, inst, saved) in [
        ("original", &instance, 0),
        ("conservative", &conservative.instance, conservative.saved_moves),
        ("aggressive", &aggressive.instance, aggressive.saved_moves),
    ] {
        // The layered-optimal allocator needs chordality; aggressive
        // coalescing may break it, in which case LH takes over.
        let spill = if inst.is_chordal() {
            Layered::bfpl().allocate(inst, registers).spill_cost
        } else {
            layered_allocation::core::LayeredHeuristic::new()
                .allocate(inst, registers)
                .spill_cost
        };
        println!(
            "{:>14} {:>9} {:>9} {:>12} {:>12}",
            name,
            inst.vertex_count(),
            inst.is_chordal(),
            saved,
            spill,
        );
    }
    println!();
    println!(
        "net effect at R={registers}: aggressive coalescing removes {} move-cost units\n\
         but lengthens live ranges; the spill-cost column shows the price.",
        aggressive.saved_moves
    );
}
