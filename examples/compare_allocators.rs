//! Sweeps the register count over a small corpus of synthetic
//! SPEC-like functions and prints the total spill cost of every
//! chordal-figure allocator — a miniature of Figure 8, with each
//! `(allocator, R)` cell fanned across the [`BatchAllocator`] worker
//! pool instead of walking the corpus sequentially.
//!
//! Run with: `cargo run --release --example compare_allocators`

use lra::core::pipeline::InstanceKind;
use lra::core::CHORDAL_FIGURE_SET;
use lra::ir::genprog::{random_ssa_function, SsaConfig};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator};
use rand::SeedableRng;

fn main() {
    // A corpus of eight spec-like hot functions, each from its own
    // seeded RNG (per-function seeding keeps batch runs deterministic).
    let functions: Vec<lra::ir::Function> = (0..8u64)
        .map(|k| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8 + k);
            let config = SsaConfig {
                target_instrs: 220,
                max_loop_depth: 3,
                branch_percent: 22,
                loop_percent: 12,
                call_percent: 6,
                copy_percent: 0,
                params: 4,
                liveness_window: 24,
            };
            random_ssa_function(&mut rng, &config, format!("spec-like::hot{k}"))
        })
        .collect();
    let target = Target::new(TargetKind::St231);

    println!(
        "{} functions, {} total values (figure columns: {})",
        functions.len(),
        functions.iter().map(|f| f.value_count).sum::<u32>(),
        CHORDAL_FIGURE_SET.join(", "),
    );
    println!();
    print!("{:>10}", "registers");
    for name in CHORDAL_FIGURE_SET {
        print!(" {name:>8}");
    }
    println!();

    for r in [1u32, 2, 4, 8, 16, 32] {
        print!("{r:>10}");
        for name in CHORDAL_FIGURE_SET {
            let pipeline = AllocationPipeline::new(target)
                .allocator(name)
                .instance_kind(InstanceKind::LinearIntervals)
                .registers(r)
                .max_rounds(1);
            let report = BatchAllocator::new(pipeline).run(&functions);
            assert_eq!(report.summary.failed, 0, "{name} failed on an SSA input");
            let total: u64 = report
                .items
                .iter()
                .filter_map(|i| i.report())
                .map(|rep| rep.first_round_spill_cost())
                .sum();
            print!(" {total:>8}");
        }
        println!();
    }
}
