//! Sweeps the register count on one synthetic SPEC-like function and
//! prints the spill cost of every chordal-figure allocator — a
//! miniature of Figure 8, driven through the pipeline and the registry.
//!
//! Run with: `cargo run --release --example compare_allocators`

use lra::core::pipeline::InstanceKind;
use lra::core::CHORDAL_FIGURE_SET;
use lra::ir::genprog::{random_ssa_function, SsaConfig};
use lra::targets::{Target, TargetKind};
use lra::AllocationPipeline;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
    let config = SsaConfig {
        target_instrs: 220,
        max_loop_depth: 3,
        branch_percent: 22,
        loop_percent: 12,
        call_percent: 6,
        copy_percent: 0,
        params: 4,
        liveness_window: 24,
    };
    let function = random_ssa_function(&mut rng, &config, "spec-like::hot");
    let target = Target::new(TargetKind::St231);

    println!(
        "function with {} values (figure columns: {})",
        function.value_count,
        CHORDAL_FIGURE_SET.join(", "),
    );
    println!();
    print!("{:>10}", "registers");
    for name in CHORDAL_FIGURE_SET {
        print!(" {name:>8}");
    }
    println!();

    for r in [1u32, 2, 4, 8, 16, 32] {
        print!("{r:>10}");
        for name in CHORDAL_FIGURE_SET {
            let report = AllocationPipeline::new(target)
                .allocator(name)
                .instance_kind(InstanceKind::LinearIntervals)
                .registers(r)
                .max_rounds(1)
                .run(&function)
                .expect("chordal-figure allocators handle SSA inputs");
            print!(" {:>8}", report.first_round_spill_cost());
        }
        println!();
    }
}
