//! Sweeps the register count on one synthetic SPEC-like function and
//! prints the spill cost of every allocator — a miniature of Figure 8.
//!
//! Run with: `cargo run --release --example compare_allocators`

use layered_allocation::core::baselines::ChaitinBriggs;
use layered_allocation::core::layered::Layered;
use layered_allocation::core::pipeline::{build_instance, InstanceKind};
use layered_allocation::core::problem::Allocator;
use layered_allocation::core::Optimal;
use layered_allocation::ir::genprog::{random_ssa_function, SsaConfig};
use layered_allocation::targets::{Target, TargetKind};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
    let config = SsaConfig {
        target_instrs: 220,
        max_loop_depth: 3,
        branch_percent: 22,
        loop_percent: 12,
        call_percent: 6,
        copy_percent: 0,
        params: 4,
        liveness_window: 24,
    };
    let function = random_ssa_function(&mut rng, &config, "spec-like::hot");
    let target = Target::new(TargetKind::St231);
    let instance = build_instance(&function, &target, InstanceKind::LinearIntervals);

    println!(
        "function with {} values, MaxLive = {}, total spill weight = {}",
        instance.vertex_count(),
        instance.max_live(),
        instance.total_weight(),
    );
    println!();
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "registers", "GC", "NL", "FPL", "BL", "BFPL", "Optimal"
    );

    for r in [1u32, 2, 4, 8, 16, 32] {
        let gc = ChaitinBriggs::new().allocate(&instance, r).spill_cost;
        let nl = Layered::nl().allocate(&instance, r).spill_cost;
        let fpl = Layered::fpl().allocate(&instance, r).spill_cost;
        let bl = Layered::bl().allocate(&instance, r).spill_cost;
        let bfpl = Layered::bfpl().allocate(&instance, r).spill_cost;
        let opt = Optimal::new().allocate(&instance, r).spill_cost;
        println!("{r:>10} {gc:>8} {nl:>8} {fpl:>8} {bl:>8} {bfpl:>8} {opt:>8}");
    }
}
