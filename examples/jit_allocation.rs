//! JIT-style allocation on a non-SSA function: the JVM figure set
//! (`DLS`, `BLS`, `GC`, `LH`, `Optimal`) from the registry, each driven
//! through the pipeline on the view it needs — the §6.2 setting of the
//! paper.
//!
//! Run with: `cargo run --release --example jit_allocation`

use lra::core::{AllocatorRegistry, JVM_FIGURE_SET};
use lra::ir::genprog::{random_jit_function, JitConfig};
use lra::targets::{Target, TargetKind};
use lra::AllocationPipeline;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let config = JitConfig {
        vars: 24,
        blocks: 10,
        instrs_per_block: 6,
        cross_percent: 35,
        back_percent: 25,
        call_percent: 8,
    };
    let function = random_jit_function(&mut rng, &config, "jvm::method");
    let target = Target::new(TargetKind::ArmCortexA8);

    println!("method: {} temporaries (non-SSA)", function.value_count);
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "registers", "allocator", "spill cost", "rounds"
    );

    for registers in [4u32, 6, 8] {
        for name in JVM_FIGURE_SET {
            // Linear scans need the interval over-approximation; the
            // graph allocators use the precise (non-chordal) graph.
            let spec = AllocatorRegistry::spec(name).unwrap();
            let report = AllocationPipeline::new(target)
                .allocator(name)
                .instance_kind(spec.default_kind())
                .registers(registers)
                .max_rounds(1)
                .run(&function)
                .expect("JVM-figure allocators handle JIT methods");
            println!(
                "{registers:>10} {name:>12} {:>12} {:>8}",
                report.first_round_spill_cost(),
                report.rounds
            );
        }
        println!();
    }
}
