//! JIT-style allocation on a non-SSA function: the layered heuristic
//! (`LH`) against linear scan, Belady linear scan, graph colouring and
//! the exact optimum — the §6.2 setting of the paper.
//!
//! Run with: `cargo run --release --example jit_allocation`

use layered_allocation::core::baselines::{BeladyLinearScan, ChaitinBriggs, LinearScan};
use layered_allocation::core::pipeline::{build_instance, InstanceKind};
use layered_allocation::core::problem::Allocator;
use layered_allocation::core::{LayeredHeuristic, Optimal};
use layered_allocation::ir::genprog::{random_jit_function, JitConfig};
use layered_allocation::targets::{Target, TargetKind};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let config = JitConfig {
        vars: 24,
        blocks: 10,
        instrs_per_block: 6,
        cross_percent: 35,
        back_percent: 25,
        call_percent: 8,
    };
    let function = random_jit_function(&mut rng, &config, "jvm::method");
    let target = Target::new(TargetKind::ArmCortexA8);

    // Precise (generally non-chordal) graph for the graph allocators;
    // linearised intervals for the scans.
    let precise = build_instance(&function, &target, InstanceKind::PreciseGraph);
    let intervals = build_instance(&function, &target, InstanceKind::LinearIntervals);
    println!(
        "method: {} temporaries, {} interferences, chordal = {}",
        precise.vertex_count(),
        precise.graph().edge_count(),
        precise.is_chordal(),
    );
    println!();
    println!("{:>10} {:>12} {:>12}", "registers", "allocator", "spill cost");

    for registers in [4u32, 6, 8] {
        let rows: Vec<(&str, u64)> = vec![
            ("DLS", LinearScan::new().allocate(&intervals, registers).spill_cost),
            ("BLS", BeladyLinearScan::new().allocate(&intervals, registers).spill_cost),
            ("GC", ChaitinBriggs::new().allocate(&precise, registers).spill_cost),
            ("LH", LayeredHeuristic::new().allocate(&precise, registers).spill_cost),
            ("Optimal", Optimal::new().allocate(&precise, registers).spill_cost),
        ];
        for (name, cost) in rows {
            println!("{registers:>10} {name:>12} {cost:>12}");
        }
        println!();
    }
}
