//! JIT-style allocation on a corpus of non-SSA methods: the JVM figure
//! set (`DLS`, `BLS`, `GC`, `LH`, `Optimal`) from the registry, each
//! fanned over the whole method corpus by [`BatchAllocator`] on the
//! view it needs — the §6.2 setting of the paper, batched the way a
//! JIT compilation queue would be.
//!
//! Run with: `cargo run --release --example jit_allocation`

use lra::core::{AllocatorRegistry, JVM_FIGURE_SET};
use lra::ir::genprog::{random_jit_function, JitConfig};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator};
use rand::SeedableRng;

fn main() {
    // Six methods, per-method seeded so batch order never matters.
    let methods: Vec<lra::ir::Function> = (0..6u64)
        .map(|k| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1 + k);
            let config = JitConfig {
                vars: 24,
                blocks: 10,
                instrs_per_block: 6,
                cross_percent: 35,
                back_percent: 25,
                call_percent: 8,
            };
            random_jit_function(&mut rng, &config, format!("jvm::method{k}"))
        })
        .collect();
    let target = Target::new(TargetKind::ArmCortexA8);

    println!(
        "corpus: {} non-SSA methods, {} temporaries total",
        methods.len(),
        methods.iter().map(|f| f.value_count).sum::<u32>()
    );
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>14}",
        "registers", "allocator", "spill cost", "converged", "non-converged"
    );

    for registers in [4u32, 6, 8] {
        for name in JVM_FIGURE_SET {
            // Linear scans need the interval over-approximation; the
            // graph allocators use the precise (non-chordal) graph.
            let spec = AllocatorRegistry::spec(name).unwrap();
            let pipeline = AllocationPipeline::new(target)
                .allocator(name)
                .instance_kind(spec.default_kind())
                .registers(registers)
                .max_rounds(1);
            let report = BatchAllocator::new(pipeline).run(&methods);
            assert_eq!(
                report.summary.failed, 0,
                "JVM-figure allocators handle JIT methods"
            );
            println!(
                "{registers:>10} {name:>12} {:>12} {:>10} {:>14}",
                report.summary.total_spill_cost,
                report.summary.converged,
                report.summary.non_converged
            );
        }
        println!();
    }
}
