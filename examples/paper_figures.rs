//! Replays the worked examples of the paper (Figures 2, 5, 6 and 7) and
//! prints each graph in Graphviz DOT syntax alongside the algorithmic
//! result the figure illustrates.
//!
//! Run with: `cargo run --example paper_figures`

use lra::core::layered::Layered;
use lra::core::problem::{Allocator, Instance};
use lra::core::Optimal;
use lra::graph::{dot, peo, stable, GraphBuilder, WeightedGraph};

fn figure5_graph() -> WeightedGraph {
    let mut b = GraphBuilder::new(7);
    for &(u, v) in &[
        (0, 3),
        (0, 5),
        (3, 5),
        (3, 4),
        (4, 5),
        (2, 3),
        (2, 4),
        (1, 2),
        (1, 6),
        (2, 6),
    ] {
        b.add_edge(u, v);
    }
    WeightedGraph::new(b.build(), vec![1, 2, 2, 5, 2, 6, 1])
}

fn main() {
    let names5 = ["a", "b", "c", "d", "e", "f", "g"];

    // ------------------------------------------------------------------
    println!("== Figure 5: Frank's maximum weighted stable set ==");
    let wg = figure5_graph();
    let order = peo::perfect_elimination_order(wg.graph()).expect("chordal");
    let set = stable::max_weight_stable_set(&wg, &order);
    let members: Vec<&str> = set.vertices.iter().map(|v| names5[v.index()]).collect();
    println!(
        "maximum weighted stable set = {{{}}} with weight {}",
        members.join(", "),
        set.weight
    );
    let highlight = set.vertices.iter().map(|v| v.index()).collect();
    println!("{}", dot::to_dot(&wg, &names5, Some(&highlight)));

    // ------------------------------------------------------------------
    println!("== Figure 6: the benefit of biasing the weights (R = 2) ==");
    let inst = Instance::from_weighted_graph(figure5_graph());
    let nl = Layered::nl().allocate(&inst, 2);
    let bl = Layered::bl().allocate(&inst, 2);
    println!(
        "NL spill cost = {}, BL spill cost = {}",
        nl.spill_cost, bl.spill_cost
    );
    println!(
        "BL allocates {{{}}}",
        bl.allocated
            .iter()
            .map(|v| names5[v])
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    // ------------------------------------------------------------------
    println!("== Figure 7: the benefit of iterating to a fixed point (R = 2) ==");
    let names7 = ["a", "b", "c", "d", "e", "f"];
    let mut b = GraphBuilder::new(6);
    for &(u, v) in &[
        (0, 3),
        (0, 5),
        (3, 5),
        (3, 4),
        (2, 3),
        (2, 4),
        (4, 5),
        (1, 2),
        (1, 4),
    ] {
        b.add_edge(u, v);
    }
    let inst7 =
        Instance::from_weighted_graph(WeightedGraph::new(b.build(), vec![4, 5, 1, 3, 2, 1]));
    let nl = Layered::nl().allocate(&inst7, 2);
    let fpl = Layered::fpl().allocate(&inst7, 2);
    println!(
        "NL allocates {{{}}} (cost {}), FPL allocates {{{}}} (cost {})",
        nl.allocated
            .iter()
            .map(|v| names7[v])
            .collect::<Vec<_>>()
            .join(", "),
        nl.spill_cost,
        fpl.allocated
            .iter()
            .map(|v| names7[v])
            .collect::<Vec<_>>()
            .join(", "),
        fpl.spill_cost,
    );
    println!();

    // ------------------------------------------------------------------
    println!("== Figure 2: spill sets are not inclusion-monotone in R ==");
    let g2 = GraphBuilder::new(5);
    let mut g2 = g2;
    for &(u, v) in &[(0, 1), (1, 2), (2, 3), (1, 3), (3, 4)] {
        g2.add_edge(u, v);
    }
    let inst2 = Instance::from_weighted_graph(WeightedGraph::new(g2.build(), vec![3, 2, 1, 2, 3]));
    let names2 = ["a", "b", "c", "d", "e"];
    for r in [1u32, 2] {
        let opt = Optimal::new().allocate(&inst2, r);
        let spilled: Vec<&str> = opt.spilled_set(&inst2).iter().map(|v| names2[v]).collect();
        println!("R = {r}: optimal spill set = {{{}}}", spilled.join(", "));
    }
    println!("(the R=2 spill set is not contained in the R=1 spill set)");
}
