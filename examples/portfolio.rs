//! The budgeted portfolio policy on server-class JIT methods.
//!
//! The paper keeps its JVM98 methods under ~35 temporaries so the
//! exact `Optimal` baseline stays tractable. This example goes past
//! that cap: it takes methods from the `jit-large` corpus (up to ~200
//! temporaries, non-chordal graphs) and allocates them three ways —
//!
//! * the cheap `LH` heuristic alone,
//! * the `Portfolio` policy (LH first, exact escalation under a
//!   deterministic node-fuel budget),
//! * the same policy with a zero budget, demonstrating the graceful
//!   degradation contract: no budget means the cheap result, never an
//!   error.
//!
//! Run with: `cargo run --release --example portfolio`

use lra::bench::suites;
use lra::core::pipeline::InstanceKind;
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator, PortfolioConfig};

fn main() {
    let methods: Vec<lra::ir::Function> = suites::jit_large_functions(2013)
        .into_iter()
        .take(8)
        .collect();
    let target = Target::new(TargetKind::ArmCortexA8);
    let registers = 6;
    println!(
        "corpus: {} large non-SSA methods, {} temporaries total, R = {registers}",
        methods.len(),
        methods.iter().map(|f| f.value_count).sum::<u32>()
    );
    println!();
    println!(
        "{:>24} {:>12} {:>10} {:>14}",
        "policy", "spill cost", "converged", "non-converged"
    );

    let base = || {
        AllocationPipeline::new(target)
            .instance_kind(InstanceKind::PreciseGraph)
            .registers(registers)
            .max_rounds(4)
    };
    let configs: [(&str, AllocationPipeline); 3] = [
        ("LH (cheap tier alone)", base().allocator("LH")),
        (
            "Portfolio (100k nodes)",
            base().portfolio(PortfolioConfig::default().node_budget(100_000)),
        ),
        (
            "Portfolio (zero budget)",
            base().portfolio(PortfolioConfig::default().node_budget(0)),
        ),
    ];

    let mut costs = Vec::new();
    for (label, pipeline) in configs {
        let report = BatchAllocator::new(pipeline).run(&methods);
        assert_eq!(report.summary.failed, 0, "every method must allocate");
        println!(
            "{label:>24} {:>12} {:>10} {:>14}",
            report.summary.total_spill_cost, report.summary.converged, report.summary.non_converged
        );
        costs.push(report.summary.total_spill_cost);
    }

    // The policy's contracts, checked on real output: escalation never
    // loses to the cheap tier, and a zero budget *is* the cheap tier.
    assert!(costs[1] <= costs[0], "portfolio never loses to LH");
    assert_eq!(costs[2], costs[0], "zero budget degrades to LH exactly");
    println!();
    println!(
        "portfolio saved {} spill cost over LH alone; zero-budget run matched LH exactly",
        costs[0] - costs[1]
    );
}
