//! Quickstart: run the full allocation pipeline on a small SSA
//! function — allocate → spill-code rewrite → reanalyse → assign →
//! verify — with the allocator selected by name from the registry.
//!
//! Run with: `cargo run --example quickstart`

use lra::ir::genprog::{random_ssa_function, SsaConfig};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, AllocatorRegistry};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2013);
    let config = SsaConfig {
        target_instrs: 80,
        liveness_window: 12,
        ..SsaConfig::default()
    };
    let function = random_ssa_function(&mut rng, &config, "quickstart::kernel");
    let target = Target::new(TargetKind::St231);
    let registers = 4;

    // The full pipeline, driven by a registry name.
    let report = AllocationPipeline::new(target)
        .allocator("BFPL")
        .registers(registers)
        .run(&function)
        .expect("BFPL is registered and the input is SSA");

    println!(
        "function {:?}: {} values, MaxLive {} -> {} with R = {}",
        function.name,
        function.value_count,
        report.max_live_before,
        report.max_live_after,
        registers,
    );
    println!(
        "{} spilled {} values (cost {}), inserted {} stores + {} loads in {} round(s)",
        report.allocator,
        report.spilled_count(),
        report.spill_cost,
        report.stores,
        report.loads,
        report.rounds,
    );
    println!(
        "assignment uses {} registers; verified feasible = {}",
        report.assignment.registers_used(),
        report.verdict.is_feasible(),
    );
    println!();

    // Every registered allocator, selected by name, same entry point.
    println!(
        "{:>8} {:>11} {:>8} {:>9}",
        "alloc", "spill cost", "rounds", "verified"
    );
    for name in AllocatorRegistry::names() {
        let spec = AllocatorRegistry::spec(name).unwrap();
        let r = AllocationPipeline::new(target)
            .allocator(name)
            .instance_kind(spec.default_kind())
            .registers(registers)
            .run(&function)
            .expect("registered allocators handle SSA inputs");
        println!(
            "{:>8} {:>11} {:>8} {:>9}",
            name,
            r.spill_cost,
            r.rounds,
            r.verdict.is_feasible()
        );
    }
}
