//! Quickstart: allocate registers for a small interference graph.
//!
//! Run with: `cargo run --example quickstart`

use layered_allocation::core::layered::Layered;
use layered_allocation::core::problem::{Allocator, Instance};
use layered_allocation::core::{verify, Optimal};
use layered_allocation::graph::{GraphBuilder, WeightedGraph};

fn main() {
    // The weighted chordal graph of Figure 5 of the paper:
    // a=0, b=1, c=2, d=3, e=4, f=5, g=6.
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    let mut b = GraphBuilder::new(7);
    for &(u, v) in &[
        (0, 3),
        (0, 5),
        (3, 5),
        (3, 4),
        (4, 5),
        (2, 3),
        (2, 4),
        (1, 2),
        (1, 6),
        (2, 6),
    ] {
        b.add_edge(u, v);
    }
    let weights = vec![1, 2, 2, 5, 2, 6, 1];
    let instance = Instance::from_weighted_graph(WeightedGraph::new(b.build(), weights));

    println!("interference graph: {:?}", instance.graph());
    println!("MaxLive = {}", instance.max_live());
    println!();

    let registers = 2;
    for allocator in [Layered::nl(), Layered::bl(), Layered::fpl(), Layered::bfpl()] {
        let result = allocator.allocate(&instance, registers);
        let allocated: Vec<&str> = result.allocated.iter().map(|v| names[v]).collect();
        let feasible = verify::check(&instance, &result, registers).is_feasible();
        println!(
            "{:>5}: allocated {{{}}}, spill cost {}, feasible = {}",
            allocator.name(),
            allocated.join(", "),
            result.spill_cost,
            feasible,
        );
    }

    let opt = Optimal::new().allocate(&instance, registers);
    println!(
        "  opt: spill cost {} (the certified optimum)",
        opt.spill_cost
    );
}
