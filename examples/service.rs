//! The long-lived allocation service end to end: start a server
//! in-process, stream a JIT corpus at it twice (cache-cold, then
//! cache-warm), watch backpressure reject and recover, and read the
//! per-server metrics.
//!
//! The per-request reports are byte-identical to a
//! [`lra::BatchAllocator`] run over the same corpus — the service
//! changes *when* work happens, never *what* comes out.
//!
//! Run with: `cargo run --release --example service`

use lra::bench::batchrun;
use lra::bench::suites;
use lra::core::batch::render_rows;
use lra::{AllocationService, BatchAllocator, BatchItem, ServiceConfig};

fn main() {
    let functions = suites::jit_large_functions(2013);
    let reference = BatchAllocator::new(batchrun::jit_large_pipeline())
        .threads(1)
        .run(&functions)
        .render();

    // The reference run above warmed the process-wide result cache;
    // clear it so the first service pass is genuinely cache-cold.
    lra::core::portfolio::portfolio_cache().clear();

    // A tiny queue against a 27-method corpus: submissions will hit
    // queue_full and be retried — that is the backpressure contract.
    let service = AllocationService::start(
        ServiceConfig::new(batchrun::jit_large_pipeline())
            .workers(2)
            .queue_capacity(4),
    );

    for pass in ["cache-cold", "cache-warm"] {
        let t0 = std::time::Instant::now();
        let items = service.run_all(&functions);
        let rows: Vec<_> = items.iter().map(BatchItem::row).collect();
        assert_eq!(
            render_rows(&rows),
            reference,
            "service output must match batch"
        );
        println!(
            "{pass}: {} functions in {:.1} ms (byte-identical to the batch report)",
            functions.len(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    let metrics = service.shutdown();
    println!("{}", metrics.render());
    println!(
        "the warm pass was served from the shared result cache ({:.0}% hit rate)",
        100.0 * metrics.cache_hit_rate()
    );
}
