//! End-to-end SSA pipeline: generate a function, print it, then let
//! [`AllocationPipeline`] run the whole allocate → spill-code rewrite →
//! reanalyse → assign → verify flow and show that register pressure
//! actually drops to the target.
//!
//! Run with: `cargo run --example ssa_pipeline`

use lra::ir::genprog::{random_ssa_function, SsaConfig};
use lra::ir::{liveness, pretty};
use lra::targets::{Target, TargetKind};
use lra::AllocationPipeline;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let config = SsaConfig {
        target_instrs: 60,
        max_loop_depth: 2,
        branch_percent: 20,
        loop_percent: 15,
        call_percent: 5,
        copy_percent: 0,
        params: 3,
        liveness_window: 10,
    };
    let function = random_ssa_function(&mut rng, &config, "demo::kernel");
    println!("{}", pretty::print(&function));

    let target = Target::new(TargetKind::St231).with_register_count(4);
    let report = AllocationPipeline::new(target)
        .allocator("BFPL")
        .run(&function)
        .expect("BFPL handles SSA functions");

    println!("MaxLive before allocation: {}", report.max_live_before);
    println!(
        "BFPL with R={}: {} spilled values, spill cost {}, over {} round(s)",
        report.registers,
        report.spilled_count(),
        report.spill_cost,
        report.rounds,
    );
    println!(
        "spill code inserted: {} stores, {} loads; MaxLive {} -> {}",
        report.stores, report.loads, report.max_live_before, report.max_live_after,
    );
    println!(
        "assignment uses {} registers; converged = {}, verified = {}",
        report.assignment.registers_used(),
        report.converged,
        report.verdict.is_feasible(),
    );

    // The report's function is the rewritten one — reanalysing it
    // reproduces max_live_after.
    let live = liveness::analyze(&report.function);
    assert_eq!(live.max_live, report.max_live_after);
}
