//! End-to-end SSA pipeline: generate a function, compute liveness and
//! spill costs, run the layered allocator, insert spill code, and show
//! that the register pressure actually drops to the target.
//!
//! Run with: `cargo run --example ssa_pipeline`

use layered_allocation::core::layered::Layered;
use layered_allocation::core::pipeline::{build_instance, InstanceKind};
use layered_allocation::core::problem::Allocator;
use layered_allocation::ir::genprog::{random_ssa_function, SsaConfig};
use layered_allocation::ir::{liveness, pretty, spill_code};
use layered_allocation::targets::{Target, TargetKind};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let config = SsaConfig {
        target_instrs: 60,
        max_loop_depth: 2,
        branch_percent: 20,
        loop_percent: 15,
        call_percent: 5,
        copy_percent: 0,
        params: 3,
        liveness_window: 10,
    };
    let function = random_ssa_function(&mut rng, &config, "demo::kernel");
    println!("{}", pretty::print(&function));

    let live = liveness::analyze(&function);
    println!("MaxLive before allocation: {}", live.max_live);

    let target = Target::new(TargetKind::St231).with_register_count(4);
    let instance = build_instance(&function, &target, InstanceKind::PreciseGraph);
    println!(
        "interference graph: {} variables, {} interferences, chordal = {}",
        instance.vertex_count(),
        instance.graph().edge_count(),
        instance.is_chordal(),
    );

    let registers = target.register_count();
    let allocation = Layered::bfpl().allocate(&instance, registers);
    println!(
        "BFPL with R={}: {} spilled variables, spill cost {}",
        registers,
        allocation.spilled_count(&instance),
        allocation.spill_cost,
    );

    let spilled = allocation.spilled_set(&instance);
    let (rewritten, stats) = spill_code::insert_spill_code(&function, &spilled);
    let live_after = liveness::analyze(&rewritten);
    println!(
        "spill code inserted: {} stores, {} loads; MaxLive {} -> {}",
        stats.stores, stats.loads, live.max_live, live_after.max_live,
    );
}
