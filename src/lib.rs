//! Facade crate for the layered-allocation workspace.
//!
//! Re-exports the member crates under short names so examples and
//! downstream users can depend on a single crate:
//!
//! * [`graph`] — chordal-graph machinery (PEO, Frank's stable set,
//!   cliques, clique trees, generators),
//! * [`ir`] — the SSA compiler substrate (CFG, dominators, liveness,
//!   interference, spill costs, spill code, program generators),
//! * [`targets`] — ST231 and ARM Cortex-A8 cost models,
//! * [`core`] — the allocators (`NL`/`BL`/`FPL`/`BFPL`/`LH`), the
//!   baselines (`GC`, `DLS`, `BLS`), the exact `Optimal` solvers, the
//!   [`AllocatorRegistry`] that names them all, the end-to-end
//!   [`AllocationPipeline`], and the parallel [`BatchAllocator`]
//!   driver that fans whole corpora across a worker pool,
//! * [`service`] — the long-lived allocation server: a bounded
//!   request queue with explicit backpressure feeding a persistent
//!   worker pool, shared result cache, per-server metrics, and a TCP
//!   JSON-lines front end plus client,
//! * [`mod@bench`] — benchmark suites and the figure runners.
//!
//! The pipeline types are re-exported at the top level: the normal way
//! to allocate registers for a function is
//!
//! ```
//! use lra::ir::builder::FunctionBuilder;
//! use lra::targets::{Target, TargetKind};
//! use lra::AllocationPipeline;
//!
//! // x and y are live together; with one register, one of them spills.
//! let mut b = FunctionBuilder::new("demo");
//! let entry = b.entry_block();
//! let x = b.op(entry, &[]);
//! let y = b.op(entry, &[x]);
//! b.op(entry, &[x, y]);
//! let f = b.finish();
//!
//! let report = AllocationPipeline::new(Target::new(TargetKind::St231))
//!     .allocator("BFPL") // any AllocatorRegistry name works here
//!     .registers(1)
//!     .run(&f)
//!     .expect("BFPL handles every SSA function");
//! assert!(report.spill_cost > 0);
//! assert!(report.verdict.is_feasible());
//! ```
//!
//! Lower-level entry points (solving a bare weighted graph, not a
//! function) remain available through [`core`]:
//!
//! ```
//! use lra::core::layered::Layered;
//! use lra::core::problem::{Allocator, Instance};
//! use lra::graph::{Graph, WeightedGraph};
//!
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
//! let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![1, 5, 1]));
//! let a = Layered::bfpl().allocate(&inst, 1);
//! assert_eq!(a.spill_cost, 2); // keep the heavy middle vertex
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lra_bench as bench;
pub use lra_core as core;
pub use lra_graph as graph;
pub use lra_ir as ir;
pub use lra_service as service;
pub use lra_targets as targets;

pub use lra_core::{
    AllocatedFunction, AllocationPipeline, AllocatorRegistry, AllocatorSpec, BatchAllocator,
    BatchItem, BatchReport, BatchSummary, CoalesceMode, PipelineError, Portfolio, PortfolioConfig,
    PortfolioOutcome, PortfolioSource, ReportRow, RowStats, SolveBudget, WorkerScratch,
};
pub use lra_service::{AllocationService, ServiceConfig, ServiceMetrics};
