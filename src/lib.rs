//! Facade crate for the layered-allocation workspace.
//!
//! Re-exports the member crates under short names so examples and
//! downstream users can depend on a single crate:
//!
//! * [`graph`] — chordal-graph machinery (PEO, Frank's stable set,
//!   cliques, clique trees, generators),
//! * [`ir`] — the SSA compiler substrate (CFG, dominators, liveness,
//!   interference, spill costs, spill code, program generators),
//! * [`targets`] — ST231 and ARM Cortex-A8 cost models,
//! * [`core`] — the allocators (`NL`/`BL`/`FPL`/`BFPL`/`LH`), the
//!   baselines (`GC`, `DLS`, `BLS`) and the exact `Optimal` solvers,
//! * [`mod@bench`] — benchmark suites and the figure runners.
//!
//! # Example
//!
//! ```
//! use layered_allocation::core::layered::Layered;
//! use layered_allocation::core::problem::{Allocator, Instance};
//! use layered_allocation::graph::{Graph, WeightedGraph};
//!
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
//! let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![1, 5, 1]));
//! let a = Layered::bfpl().allocate(&inst, 1);
//! assert_eq!(a.spill_cost, 2); // keep the heavy middle vertex
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lra_bench as bench;
pub use lra_core as core;
pub use lra_graph as graph;
pub use lra_ir as ir;
pub use lra_targets as targets;
