//! Property-based tests of the allocator invariants, driven by seeded
//! random graphs (chordal, interval and general).

use lra::core::baselines::ChaitinBriggs;
use lra::core::layered::Layered;
use lra::core::optimal::{branch_bound, chordal_dp, flow};
use lra::core::problem::{Allocator, Instance};
use lra::core::{verify, LayeredHeuristic, Optimal};
use lra::graph::{generate, peo, stable, WeightedGraph};
use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn chordal_instance(seed: u64, n: usize) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::random_chordal(&mut rng, n, n + n / 2, 4);
    let w = generate::random_weights(&mut rng, n, 2);
    Instance::from_weighted_graph(WeightedGraph::new(g, w))
}

fn general_instance(seed: u64, n: usize) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::random_general(&mut rng, n, 30);
    let w = generate::random_weights(&mut rng, n, 2);
    Instance::from_weighted_graph(WeightedGraph::new(g, w))
}

fn interval_instance(seed: u64, n: usize) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let profile = generate::IntervalProfile {
        n,
        points: (n as u32) * 3,
        mean_len: 6,
        long_lived_percent: 15,
    };
    let ivs = generate::random_interval_set(&mut rng, &profile);
    let w = generate::random_weights(&mut rng, n, 2);
    Instance::from_intervals(ivs, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every layered variant is feasible and bounded by the optimum on
    /// random chordal graphs.
    #[test]
    fn layered_feasible_and_bounded(seed in 0u64..10_000, n in 8usize..40, r in 1u32..6) {
        let inst = chordal_instance(seed, n);
        let opt = Optimal::new().allocate(&inst, r);
        prop_assert!(verify::check(&inst, &opt, r).is_feasible());
        for alg in [Layered::nl(), Layered::bl(), Layered::fpl(), Layered::bfpl()] {
            let a = alg.allocate(&inst, r);
            prop_assert!(verify::check(&inst, &a, r).is_feasible(), "{} infeasible", alg.name());
            prop_assert!(a.spill_cost >= opt.spill_cost, "{} beat the optimum", alg.name());
            prop_assert_eq!(a.spill_cost + a.allocated_weight, inst.total_weight());
        }
    }

    /// The fixed point never hurts: FPL extends NL's allocation, BFPL
    /// extends BL's.
    #[test]
    fn fixed_point_never_increases_cost(seed in 0u64..10_000, n in 8usize..40, r in 1u32..6) {
        let inst = chordal_instance(seed, n);
        let nl = Layered::nl().allocate(&inst, r);
        let fpl = Layered::fpl().allocate(&inst, r);
        prop_assert!(nl.allocated.is_subset(&fpl.allocated));
        prop_assert!(fpl.spill_cost <= nl.spill_cost);
        let bl = Layered::bl().allocate(&inst, r);
        let bfpl = Layered::bfpl().allocate(&inst, r);
        prop_assert!(bl.allocated.is_subset(&bfpl.allocated));
        prop_assert!(bfpl.spill_cost <= bl.spill_cost);
    }

    /// Frank's algorithm matches brute force on random chordal graphs.
    #[test]
    fn frank_is_exact(seed in 0u64..10_000, n in 4usize..18) {
        let inst = chordal_instance(seed, n);
        let order = peo::perfect_elimination_order(inst.graph()).expect("chordal");
        let fast = stable::max_weight_stable_set(inst.weighted_graph(), &order);
        let slow = stable::max_weight_stable_set_brute(inst.weighted_graph(), None);
        prop_assert_eq!(fast.weight, slow.weight);
        prop_assert!(inst.graph().is_stable_set(
            &fast.vertices.iter().map(|v| v.index()).collect::<Vec<_>>()
        ));
    }

    /// The clique-tree DP and the min-cost-flow solver agree on interval
    /// instances (both are exact).
    #[test]
    fn dp_and_flow_agree(seed in 0u64..10_000, n in 5usize..30, r in 1u32..6) {
        let inst = interval_instance(seed, n);
        let by_flow = flow::solve(&inst, r);
        if let Some(by_dp) = chordal_dp::solve(&inst, r) {
            prop_assert_eq!(by_flow.spill_cost, by_dp.spill_cost);
        }
        prop_assert!(verify::check(&inst, &by_flow, r).is_feasible());
    }

    /// Branch-and-bound matches the DP on chordal graphs (both exact,
    /// different machinery).
    #[test]
    fn branch_bound_matches_dp(seed in 0u64..10_000, n in 5usize..16, r in 1u32..4) {
        let inst = chordal_instance(seed, n);
        let dp = chordal_dp::solve(&inst, r).expect("small bags");
        let bb = branch_bound::solve(&inst, r, 50_000_000).expect("within budget");
        prop_assert_eq!(dp.spill_cost, bb.spill_cost);
    }

    /// LH and GC are feasible on arbitrary graphs and never beat the
    /// exact optimum.
    #[test]
    fn general_graph_allocators_sound(seed in 0u64..10_000, n in 5usize..18, r in 1u32..5) {
        let inst = general_instance(seed, n);
        let lh = LayeredHeuristic::new().allocate(&inst, r);
        let gc = ChaitinBriggs::new().allocate(&inst, r);
        prop_assert!(verify::check(&inst, &lh, r).is_feasible());
        prop_assert!(verify::check(&inst, &gc, r).is_feasible());
        let opt = branch_bound::solve(&inst, r, 50_000_000).expect("within budget");
        prop_assert!(lh.spill_cost >= opt.spill_cost);
        prop_assert!(gc.spill_cost >= opt.spill_cost);
    }

    /// Optimal cost is monotone non-increasing in the register count.
    #[test]
    fn optimal_cost_monotone_in_r(seed in 0u64..10_000, n in 6usize..25) {
        let inst = chordal_instance(seed, n);
        let mut prev = u64::MAX;
        for r in 1..=6u32 {
            let c = Optimal::new().allocate(&inst, r).spill_cost;
            prop_assert!(c <= prev);
            prev = c;
        }
    }

    /// Vertex relabelling does not change any allocator's cost profile
    /// beyond tie-breaking: the optimal cost is isomorphism-invariant.
    #[test]
    fn optimal_is_isomorphism_invariant(seed in 0u64..10_000, n in 6usize..20, r in 1u32..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::random_chordal(&mut rng, n, n + 5, 4);
        let w = generate::random_weights(&mut rng, n, 2);
        let (h, perm) = generate::shuffle_vertices(&mut rng, &g);
        let mut wp = vec![0; n];
        for v in 0..n {
            wp[perm[v]] = w[v];
        }
        let a = Optimal::new().allocate(&Instance::from_weighted_graph(WeightedGraph::new(g, w)), r);
        let b = Optimal::new().allocate(&Instance::from_weighted_graph(WeightedGraph::new(h, wp)), r);
        prop_assert_eq!(a.spill_cost, b.spill_cost);
    }

    /// A random extra stable set can never be added to an optimal
    /// allocation (optimality certificate sanity).
    #[test]
    fn optimum_is_maximal(seed in 0u64..10_000, n in 6usize..20, r in 1u32..4) {
        let inst = chordal_instance(seed, n);
        let opt = Optimal::new().allocate(&inst, r);
        // Adding any single spilled vertex must be infeasible or
        // weight-neutral (zero-weight vertices may be interchangeable).
        let spilled = opt.spilled_set(&inst);
        for v in spilled.iter() {
            if inst.weighted_graph().weight(v) == 0 {
                continue;
            }
            let mut bigger = opt.allocated.clone();
            bigger.insert(v);
            prop_assert!(
                !verify::check_set(&inst, &bigger, r).is_feasible(),
                "optimal allocation missed a free vertex {v}"
            );
        }
    }
}

/// Non-proptest randomised check: LS respects its interval semantics on
/// bigger instances than proptest would comfortably drive.
#[test]
fn linear_scan_feasibility_at_scale() {
    use lra::core::baselines::LinearScan;
    for seed in 0..5u64 {
        let inst = interval_instance(seed, 300);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let r = rng.gen_range(2..20);
        let a = LinearScan::new().allocate(&inst, r);
        assert!(verify::check(&inst, &a, r).is_feasible());
    }
}
