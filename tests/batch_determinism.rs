//! Integration tests for the parallel [`BatchAllocator`] driver: the
//! batch path must produce byte-identical reports to the sequential
//! path on real suite corpora, handle degenerate batches, and surface
//! per-item failures without aborting the batch.

use lra::bench::{batchrun, suites};
use lra::core::batch;
use lra::core::pipeline::InstanceKind;
use lra::ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator, PipelineError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

/// Serialises the tests that flip the process-global
/// [`batch::set_default_threads`] knob: the test harness runs tests
/// concurrently, and an interleaved override would make the
/// thread-count-invariance comparisons vacuous (both sides running at
/// the same worker count).
static THREADS_KNOB: Mutex<()> = Mutex::new(());

fn ssa_corpus(n: u64, salt: u64) -> Vec<lra::ir::Function> {
    (0..n)
        .map(|k| {
            let mut rng = ChaCha8Rng::seed_from_u64(salt + k);
            let cfg = SsaConfig {
                target_instrs: 70,
                liveness_window: 10,
                ..SsaConfig::default()
            };
            random_ssa_function(&mut rng, &cfg, format!("f{k}"))
        })
        .collect()
}

/// Runs `name` from the standard CLI corpora at threads=1 and
/// threads=4 and asserts byte-identical reports — the exact corpora
/// CI's bench-smoke job diffs, so these tests cannot drift from what
/// ships.
fn assert_standard_experiment_deterministic(name_prefix: &str) {
    let exp = batchrun::standard_experiments(2013)
        .into_iter()
        .find(|e| e.name.starts_with(name_prefix))
        .unwrap_or_else(|| panic!("standard experiment {name_prefix}* exists"));
    let seq = exp.run(1);
    let par = exp.run(4);
    assert_eq!(seq.render(), par.render());
    assert_eq!(seq.summary, par.summary);
}

/// threads=1 and threads=4 must render byte-identical reports on the
/// random SSA suite corpus (lao-kernels), per the acceptance criteria.
#[test]
fn batch_is_deterministic_on_the_random_suite() {
    assert_standard_experiment_deterministic("lao-kernels/");
}

/// Same property on the non-chordal JVM98 corpus.
#[test]
fn batch_is_deterministic_on_jvm98() {
    assert_standard_experiment_deterministic("specjvm98/");
}

/// Same property on the large-method corpus under the escalating
/// portfolio policy — the standard configuration is fuel-only, so the
/// escalation outcomes are thread-count-invariant too.
#[test]
fn batch_is_deterministic_on_jit_large_under_the_portfolio() {
    assert_standard_experiment_deterministic("jit-large/");
}

/// Suite generation itself fans across the pool; the corpus must not
/// depend on the worker count.
#[test]
fn suite_generation_is_thread_count_invariant() {
    let _serial = THREADS_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    batch::set_default_threads(1);
    let a = suites::lao_kernels(5);
    batch::set_default_threads(4);
    let b = suites::lao_kernels(5);
    batch::set_default_threads(0);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.function, y.function);
        assert_eq!(
            x.instance.weighted_graph().weights(),
            y.instance.weighted_graph().weights()
        );
        assert_eq!(
            x.instance.graph().edge_count(),
            y.instance.graph().edge_count()
        );
    }
}

#[test]
fn empty_batch_is_a_clean_no_op() {
    let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231));
    let report = BatchAllocator::new(pipeline).threads(4).run(&[]);
    assert_eq!(report.summary.functions, 0);
    assert_eq!(report.summary.succeeded, 0);
    assert_eq!(report.summary.failed, 0);
    assert!(report.items.is_empty());
    assert_eq!(report.summary.spill_cost_quartiles, None);
}

#[test]
fn single_function_batch_matches_direct_pipeline_run() {
    let f = &ssa_corpus(1, 40)[0];
    let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231)).registers(4);
    let direct = pipeline.run(f).expect("BFPL on SSA");
    let report = BatchAllocator::new(pipeline)
        .threads(4)
        .run(std::slice::from_ref(f));
    assert_eq!(report.summary.functions, 1);
    let item = report.items[0].report().expect("batch item succeeded");
    assert_eq!(item.spill_cost, direct.spill_cost);
    assert_eq!(item.rounds, direct.rounds);
    assert_eq!(item.converged, direct.converged);
    assert_eq!(
        item.assignment.registers_used(),
        direct.assignment.registers_used()
    );
}

/// A function the pipeline rejects (non-chordal input under a
/// chordal-only allocator) surfaces as a per-item error; the rest of
/// the batch completes normally.
#[test]
fn failing_function_is_a_per_item_error_not_a_batch_abort() {
    let mut functions = ssa_corpus(3, 60);
    // Find a JIT method whose precise interference graph is actually
    // non-chordal (small random methods are occasionally chordal).
    let target = Target::new(TargetKind::St231);
    let intruder = (0..64u64)
        .find_map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_jit_function(&mut rng, &JitConfig::default(), "jit::bad");
            let inst = lra::core::pipeline::build_instance(&f, &target, InstanceKind::PreciseGraph);
            (!inst.is_chordal()).then_some(f)
        })
        .expect("some JIT seed yields a non-chordal graph");
    functions.insert(1, intruder);
    let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231))
        .allocator("BFPL")
        .registers(4);
    let report = BatchAllocator::new(pipeline).threads(2).run(&functions);
    assert_eq!(report.summary.functions, 4);
    assert_eq!(report.summary.failed, 1);
    assert_eq!(report.summary.succeeded, 3);
    assert!(matches!(
        report.items[1].outcome,
        Err(PipelineError::NeedsChordal(_))
    ));
    for i in [0usize, 2, 3] {
        assert!(report.items[i].outcome.is_ok(), "item {i} should succeed");
    }
    assert!(report.render().contains("error:"));
}

/// Non-converged pipeline runs are counted in the batch summary — the
/// per-report flag alone is easy to lose in a large corpus.
#[test]
fn non_converged_runs_surface_in_summary() {
    use lra::ir::builder::FunctionBuilder;
    // Wide single-use pressure point: cannot converge at R = 2.
    let mut b = FunctionBuilder::new("wide");
    let e = b.entry_block();
    let vs: Vec<_> = (0..7).map(|_| b.op(e, &[])).collect();
    b.op(e, &vs);
    let mut functions = vec![b.finish()];
    // A trivial function that converges immediately.
    let mut t = FunctionBuilder::new("tiny");
    let e = t.entry_block();
    let x = t.op(e, &[]);
    t.op(e, &[x]);
    functions.push(t.finish());

    let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231)).registers(2);
    let report = BatchAllocator::new(pipeline).run(&functions);
    assert_eq!(report.summary.succeeded, 2);
    assert_eq!(report.summary.non_converged, 1);
    assert_eq!(report.summary.converged, 1);
    assert!(report.render().contains("converged 1 | non-converged 1"));
}

/// The figure runners ride the same pool: a figure computed at 1 and
/// 4 workers must be identical.
#[test]
fn figure_runner_is_thread_count_invariant() {
    use lra::bench::experiments;
    let _serial = THREADS_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let ws: Vec<suites::Workload> = suites::lao_kernels(3).into_iter().take(6).collect();
    batch::set_default_threads(1);
    let a = experiments::mean_cost_figure(&ws, &[2, 4]);
    batch::set_default_threads(4);
    let b = experiments::mean_cost_figure(&ws, &[2, 4]);
    batch::set_default_threads(0);
    let render = |rows: &[experiments::MeanRow]| experiments::render_mean_table("fig", rows);
    assert_eq!(render(&a), render(&b));
}
