//! End-to-end pipeline integration tests (ISSUE 1 satellite): for
//! seeded small chordal SSA functions, the `AllocationPipeline` with
//! `BFPL` yields a spill cost bounded below by `Optimal` and above by
//! full-spill, and the verifier accepts the result, for every register
//! count in `2..=8`.

use lra::core::pipeline::{build_instance, InstanceKind};
use lra::targets::{Target, TargetKind};
use lra::AllocationPipeline;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_chordal_function(seed: u64) -> lra::ir::Function {
    use lra::ir::genprog::{random_ssa_function, validate_strict_ssa, SsaConfig};
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = SsaConfig {
        target_instrs: 70,
        max_loop_depth: 2,
        branch_percent: 18,
        loop_percent: 14,
        call_percent: 4,
        copy_percent: 0,
        params: 3,
        liveness_window: 12,
    };
    let f = random_ssa_function(&mut rng, &cfg, format!("e2e{seed}"));
    validate_strict_ssa(&f).expect("generator emits strict SSA");
    f
}

#[test]
fn bfpl_between_optimal_and_full_spill_for_every_r() {
    let target = Target::new(TargetKind::St231);
    for seed in 0..6u64 {
        let f = small_chordal_function(seed);
        let inst = build_instance(&f, &target, InstanceKind::PreciseGraph);
        assert!(inst.is_chordal(), "SSA instances are chordal");
        let full_spill = inst.total_weight();

        for r in 2u32..=8 {
            let bfpl = AllocationPipeline::new(target)
                .allocator("BFPL")
                .registers(r)
                .run(&f)
                .expect("BFPL runs on chordal SSA instances");
            let opt = AllocationPipeline::new(target)
                .allocator("Optimal")
                .registers(r)
                .max_rounds(1)
                .run(&f)
                .expect("Optimal runs on every instance");

            let c = bfpl.first_round_spill_cost();
            assert!(
                c >= opt.first_round_spill_cost(),
                "seed {seed}, R={r}: BFPL ({c}) beat Optimal ({})",
                opt.first_round_spill_cost()
            );
            assert!(
                c <= full_spill,
                "seed {seed}, R={r}: BFPL cost {c} above full-spill {full_spill}"
            );
            assert!(
                bfpl.verdict.is_feasible(),
                "seed {seed}, R={r}: verifier rejected BFPL's allocation"
            );
            assert!(
                opt.verdict.is_feasible(),
                "seed {seed}, R={r}: verifier rejected Optimal's allocation"
            );
        }
    }
}

#[test]
fn pipeline_spill_code_and_assignment_are_consistent() {
    let target = Target::new(TargetKind::St231);
    for seed in 0..4u64 {
        let f = small_chordal_function(seed);
        let report = AllocationPipeline::new(target)
            .allocator("BFPL")
            .registers(3)
            .run(&f)
            .unwrap();

        // The rewritten function still validates and is SSA-shaped.
        assert_eq!(report.function.validate(), Ok(()));
        // Load/store bookkeeping matches the function contents (the
        // generator may emit memory ops of its own, so compare deltas
        // against the original function).
        let count = |g: &lra::ir::Function| {
            g.blocks.iter().flat_map(|b| b.instrs.iter()).fold(
                (0usize, 0usize),
                |(s, l), i| match i.opcode {
                    lra::ir::Opcode::Store => (s + 1, l),
                    lra::ir::Opcode::Load => (s, l + 1),
                    _ => (s, l),
                },
            )
        };
        let (stores_before, loads_before) = count(&f);
        let (stores_after, loads_after) = count(&report.function);
        assert_eq!(
            stores_after - stores_before,
            report.stores,
            "seed {seed}: store count mismatch"
        );
        assert_eq!(
            loads_after - loads_before,
            report.loads,
            "seed {seed}: load count mismatch"
        );

        if report.converged {
            // Every interfering pair of assigned values gets distinct
            // registers, and no more than R registers are in use.
            assert!(report.assignment.registers_used() <= report.registers as usize);
            let inst = build_instance(&report.function, &target, InstanceKind::PreciseGraph);
            for (u, v) in inst.graph().edges() {
                if let (Some(a), Some(b)) = (
                    report.assignment.register_of(u.index()),
                    report.assignment.register_of(v.index()),
                ) {
                    assert_ne!(a, b, "seed {seed}: {u} and {v} share register {a}");
                }
            }
        }
    }
}

#[test]
fn iteration_reduces_pressure_to_r_when_it_converges() {
    let target = Target::new(TargetKind::St231);
    for seed in 0..4u64 {
        let f = small_chordal_function(seed);
        for r in [3u32, 5] {
            let report = AllocationPipeline::new(target)
                .allocator("BFPL")
                .registers(r)
                .run(&f)
                .unwrap();
            if report.converged {
                assert!(
                    report.max_live_after <= r as usize,
                    "seed {seed}, R={r}: converged but MaxLive {} > R",
                    report.max_live_after
                );
            }
        }
    }
}

#[test]
fn interval_view_pipeline_matches_flow_optimum() {
    // On the linearised-interval view the exact optimum is polynomial;
    // the pipeline's Optimal must agree with a direct flow solve.
    use lra::core::problem::Allocator as _;
    let target = Target::new(TargetKind::St231);
    let f = small_chordal_function(9);
    let inst = build_instance(&f, &target, InstanceKind::LinearIntervals);
    for r in 2u32..=8 {
        let direct = lra::core::Optimal::new().allocate(&inst, r).spill_cost;
        let piped = AllocationPipeline::new(target)
            .allocator("Optimal")
            .instance_kind(InstanceKind::LinearIntervals)
            .registers(r)
            .max_rounds(1)
            .run(&f)
            .unwrap();
        assert_eq!(piped.first_round_spill_cost(), direct, "R={r}");
    }
}
