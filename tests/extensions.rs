//! Integration tests for the extension features: step-wise layers,
//! register assignment, coalescing, and live-range splitting — used
//! together as a downstream compiler would.

use lra::core::coalesce::{aggressive_coalesce, conservative_coalesce};
use lra::core::layered::Layered;
use lra::core::pipeline::{build_instance, copy_affinities, InstanceKind};
use lra::core::problem::Allocator;
use lra::core::{assign, verify, LayeredHeuristic, Optimal};
use lra::ir::genprog::{random_ssa_function, validate_strict_ssa, SsaConfig};
use lra::ir::split::split_at_uses;
use lra::targets::{Target, TargetKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn ssa_function(seed: u64) -> lra::ir::Function {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = SsaConfig {
        target_instrs: 100,
        branch_percent: 25,
        loop_percent: 14,
        copy_percent: 8,
        ..SsaConfig::default()
    };
    random_ssa_function(&mut rng, &cfg, format!("x{seed}"))
}

#[test]
fn step_layers_bounded_by_optimal_on_suite_functions() {
    let target = Target::new(TargetKind::St231);
    for seed in 0..4u64 {
        let f = ssa_function(seed);
        let inst = build_instance(&f, &target, InstanceKind::LinearIntervals);
        for r in [2u32, 4] {
            let opt = Optimal::new().allocate(&inst, r).spill_cost;
            for step in [1u32, 2] {
                let a = Layered::bfpl().with_step(step).allocate(&inst, r);
                assert!(verify::check(&inst, &a, r).is_feasible());
                assert!(a.spill_cost >= opt);
            }
        }
    }
}

#[test]
fn allocation_then_assignment_end_to_end() {
    let target = Target::new(TargetKind::ArmCortexA8);
    for seed in 0..4u64 {
        let f = ssa_function(seed);
        let inst = build_instance(&f, &target, InstanceKind::PreciseGraph);
        let r = 6;
        let alloc = Layered::bfpl().allocate(&inst, r);
        let asg = assign::assign(&inst, &alloc, r).expect("feasible allocation assigns");
        assert!(asg.registers_used() <= r as usize);
        for (u, v) in inst.graph().edges() {
            if let (Some(a), Some(b)) = (asg.register_of(u.index()), asg.register_of(v.index())) {
                assert_ne!(a, b);
            }
        }
    }
}

#[test]
fn coalesce_then_allocate_is_feasible() {
    let target = Target::new(TargetKind::St231);
    for seed in 0..4u64 {
        let f = ssa_function(seed);
        let inst = build_instance(&f, &target, InstanceKind::PreciseGraph);
        let aff = copy_affinities(&f);
        let r = 8;
        for coalesced in [
            aggressive_coalesce(&inst, &aff),
            conservative_coalesce(&inst, &aff, r),
        ] {
            let a = if coalesced.instance.is_chordal() {
                Layered::bfpl().allocate(&coalesced.instance, r)
            } else {
                LayeredHeuristic::new().allocate(&coalesced.instance, r)
            };
            assert!(
                verify::check(&coalesced.instance, &a, r).is_feasible(),
                "seed {seed}: infeasible on coalesced graph"
            );
            // Weight conservation: classes carry the sum of members.
            assert_eq!(coalesced.instance.total_weight(), inst.total_weight());
        }
    }
}

#[test]
fn split_then_allocate_models_reload_pressure() {
    let target = Target::new(TargetKind::St231).with_memory_costs(3, 0);
    for seed in 0..3u64 {
        let f = ssa_function(seed);
        let s = split_at_uses(&f);
        validate_strict_ssa(&s.function).expect("split preserves SSA");
        let whole = build_instance(&f, &target, InstanceKind::LinearIntervals);
        let split = build_instance(&s.function, &target, InstanceKind::LinearIntervals);
        let r = 4;
        let c_whole = Optimal::new().allocate(&whole, r).spill_cost;
        let c_split = Optimal::new().allocate(&split, r).spill_cost;
        // The split model accounts for reload sub-ranges, so it can
        // only be as cheap or costlier than the whole-range model.
        assert!(
            c_split >= c_whole,
            "seed {seed}: split {c_split} cheaper than whole {c_whole}?"
        );
    }
}

#[test]
fn ssa_conversion_unlocks_layered_allocation() {
    use lra::ir::genprog::{random_jit_function, JitConfig};
    use lra::ir::ssa::into_ssa;
    let target = Target::new(TargetKind::ArmCortexA8);
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_jit_function(&mut rng, &JitConfig::default(), format!("m{seed}"));
        let ssa = into_ssa(&f);
        validate_strict_ssa(&ssa.function).expect("conversion is strict SSA");
        let inst = build_instance(&ssa.function, &target, InstanceKind::LinearIntervals);
        assert!(inst.is_chordal(), "converted methods must be chordal");
        let r = 6;
        let bfpl = Layered::bfpl().allocate(&inst, r);
        let opt = Optimal::new().allocate(&inst, r);
        assert!(verify::check(&inst, &bfpl, r).is_feasible());
        assert!(bfpl.spill_cost >= opt.spill_cost);
        assert!(
            bfpl.spill_cost as f64 <= opt.spill_cost as f64 * 1.10 + 1.0,
            "seed {seed}: layered not quasi-optimal after conversion \
             ({} vs {})",
            bfpl.spill_cost,
            opt.spill_cost
        );
    }
}

#[test]
fn generated_copies_show_up_as_affinities() {
    let f = ssa_function(7);
    let copies = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter())
        .filter(|i| i.opcode == lra::ir::Opcode::Copy)
        .count();
    assert!(copies > 0, "copy_percent: 8 should generate copies");
    let aff = copy_affinities(&f);
    assert!(aff.len() >= copies);
}
