//! The incremental re-analysis contract, end to end:
//!
//! * property test — after a randomized spill rewrite of a random
//!   (SSA or JIT) function, `liveness::analyze_incremental` seeded
//!   from the previous fixed point equals a fresh
//!   `liveness::analyze` of the rewritten function, field for field;
//! * regression — `AllocationPipeline` reports (and whole
//!   `BatchReport`s) are byte-identical whether rounds share the
//!   incremental `FunctionAnalysis` (the default) or force a full
//!   recomputation (`full_reanalysis(true)`, the `LRA_FULL_REANALYSIS`
//!   CI path).

use lra::core::pipeline::InstanceKind;
use lra::graph::BitSet;
use lra::ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra::ir::{liveness, spill_code, Function, FunctionAnalysis};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_function(rng: &mut ChaCha8Rng, jit: bool) -> Function {
    if jit {
        random_jit_function(rng, &JitConfig::default(), "jit")
    } else {
        let cfg = SsaConfig {
            branch_percent: 30,
            loop_percent: 20,
            ..SsaConfig::default()
        };
        random_ssa_function(rng, &cfg, "ssa")
    }
}

fn random_spill_set(rng: &mut ChaCha8Rng, f: &Function, percent: u32) -> BitSet {
    BitSet::from_iter_with_capacity(
        f.value_count as usize,
        (0..f.value_count as usize).filter(|_| rng.gen_range(0u32..100) < percent),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_liveness_equals_fresh_analysis(seed in 0u64..10_000, percent in 5u32..60) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let jit = seed % 2 == 0;
        let optimized = seed % 3 == 0;
        let f = random_function(&mut rng, jit);
        let prev = liveness::analyze(&f);
        let spilled = random_spill_set(&mut rng, &f, percent);
        let rw = if optimized {
            spill_code::rewrite_spill_code_optimized(&f, &spilled)
        } else {
            spill_code::rewrite_spill_code(&f, &spilled)
        };
        let incremental = liveness::analyze_incremental(
            &rw.function,
            &prev,
            &rw.delta.dirty_blocks,
            &rw.delta.changed_values,
        );
        let fresh = liveness::analyze(&rw.function);
        prop_assert_eq!(
            &incremental, &fresh,
            "seed {} jit {} optimized {} diverged", seed, jit, optimized
        );
    }

    #[test]
    fn incremental_liveness_chains_over_two_rewrites(seed in 0u64..10_000) {
        // Round-over-round seeding, the shape the pipeline actually
        // uses: the second incremental solve starts from the first
        // incremental result, not from a fresh analysis.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_function(&mut rng, seed % 2 == 1);
        let a0 = liveness::analyze(&f);
        let s1 = random_spill_set(&mut rng, &f, 25);
        let r1 = spill_code::rewrite_spill_code(&f, &s1);
        let a1 = liveness::analyze_incremental(
            &r1.function, &a0, &r1.delta.dirty_blocks, &r1.delta.changed_values,
        );
        let s2 = random_spill_set(&mut rng, &r1.function, 20);
        let r2 = spill_code::rewrite_spill_code_optimized(&r1.function, &s2);
        let a2 = liveness::analyze_incremental(
            &r2.function, &a1, &r2.delta.dirty_blocks, &r2.delta.changed_values,
        );
        prop_assert_eq!(&a2, &liveness::analyze(&r2.function), "seed {} diverged", seed);
    }
}

#[test]
fn function_analysis_after_spill_matches_compute() {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    for jit in [false, true] {
        let f = random_function(&mut rng, jit);
        let analysis = FunctionAnalysis::compute(&f);
        let spilled = random_spill_set(&mut rng, &f, 30);
        let rw = spill_code::rewrite_spill_code(&f, &spilled);
        let incremental = analysis.after_spill(&rw.function, &rw.delta);
        let fresh = FunctionAnalysis::compute(&rw.function);
        assert_eq!(incremental.liveness, fresh.liveness);
        assert_eq!(incremental.linearization.order, fresh.linearization.order);
        assert_eq!(incremental.linearization.base, fresh.linearization.base);
        assert_eq!(incremental.linearization.end, fresh.linearization.end);
    }
}

/// One pipeline per (allocator, view) pair that exercises multiple
/// spill rounds on the shared-analysis path.
fn pipelines() -> Vec<AllocationPipeline> {
    let t = Target::new(TargetKind::ArmCortexA8);
    vec![
        AllocationPipeline::new(t)
            .allocator("LH")
            .instance_kind(InstanceKind::PreciseGraph)
            .registers(4)
            .max_rounds(4),
        AllocationPipeline::new(t)
            .allocator("BFPL")
            .instance_kind(InstanceKind::LinearIntervals)
            .registers(4)
            .max_rounds(4)
            .optimized_spill_code(true),
    ]
}

fn corpus() -> Vec<Function> {
    let mut rng = ChaCha8Rng::seed_from_u64(2013);
    let mut fs = Vec::new();
    for i in 0..6 {
        fs.push(random_function(&mut rng, i % 2 == 0));
    }
    fs
}

#[test]
fn shared_analysis_reports_match_full_reanalysis_reports() {
    for pipeline in pipelines() {
        for f in corpus() {
            let incremental = pipeline.clone().full_reanalysis(false).run(&f).unwrap();
            let full = pipeline.clone().full_reanalysis(true).run(&f).unwrap();
            assert_eq!(incremental.rounds, full.rounds);
            assert_eq!(incremental.converged, full.converged);
            assert_eq!(incremental.round_costs, full.round_costs);
            assert_eq!(incremental.spilled, full.spilled);
            assert_eq!(incremental.stores, full.stores);
            assert_eq!(incremental.loads, full.loads);
            assert_eq!(incremental.assignment, full.assignment);
            assert_eq!(incremental.function, full.function);
            assert_eq!(incremental.max_live_before, full.max_live_before);
            assert_eq!(incremental.max_live_after, full.max_live_after);
        }
    }
}

#[test]
fn batch_reports_are_byte_identical_across_reanalysis_modes() {
    let functions = corpus();
    for pipeline in pipelines() {
        let incremental = BatchAllocator::new(pipeline.clone().full_reanalysis(false))
            .threads(2)
            .run(&functions);
        let full = BatchAllocator::new(pipeline.full_reanalysis(true))
            .threads(1)
            .run(&functions);
        assert_eq!(
            incremental.render(),
            full.render(),
            "batch output must not depend on the re-analysis mode"
        );
    }
}
