//! Integration tests replaying the paper's worked examples end to end,
//! plus quasi-optimality checks on suite samples — the headline claims
//! of the evaluation, at test scale.

use lra::core::baselines::ChaitinBriggs;
use lra::core::layered::Layered;
use lra::core::problem::{Allocator, Instance};
use lra::core::{verify, LayeredHeuristic, Optimal};
use lra::graph::{GraphBuilder, WeightedGraph};
use lra_bench::suites;

/// Figure 5/6 graph (a..g = 0..6, weights 1,2,2,5,2,6,1).
fn figure6_instance() -> Instance {
    let mut b = GraphBuilder::new(7);
    for &(u, v) in &[
        (0, 3),
        (0, 5),
        (3, 5),
        (3, 4),
        (4, 5),
        (2, 3),
        (2, 4),
        (1, 2),
        (1, 6),
        (2, 6),
    ] {
        b.add_edge(u, v);
    }
    Instance::from_weighted_graph(WeightedGraph::new(b.build(), vec![1, 2, 2, 5, 2, 6, 1]))
}

#[test]
fn figure6_bias_closes_the_gap_to_optimal() {
    let inst = figure6_instance();
    let bl = Layered::bl().allocate(&inst, 2);
    let opt = Optimal::new().allocate(&inst, 2);
    assert_eq!(opt.spill_cost, 4);
    assert_eq!(bl.spill_cost, opt.spill_cost, "BL is optimal on Figure 6");
}

#[test]
fn figure6_all_layered_variants_feasible_across_r() {
    let inst = figure6_instance();
    for r in 0..=4u32 {
        for alg in [
            Layered::nl(),
            Layered::bl(),
            Layered::fpl(),
            Layered::bfpl(),
        ] {
            let a = alg.allocate(&inst, r);
            if r > 0 {
                assert!(
                    verify::check(&inst, &a, r).is_feasible(),
                    "{} infeasible at R={r}",
                    alg.name()
                );
            }
            let opt = Optimal::new().allocate(&inst, r);
            assert!(
                a.spill_cost >= opt.spill_cost,
                "{} beat Optimal",
                alg.name()
            );
        }
    }
}

#[test]
fn gc_is_dominated_by_layered_on_the_suite_sample() {
    // The paper's headline comparison, on a small slice of the EEMBC
    // suite: the layered allocators' total cost never exceeds GC's.
    let workloads: Vec<_> = suites::eembc(5).into_iter().take(9).collect();
    for r in [2u32, 4, 8] {
        let mut total_gc = 0u64;
        let mut total_bfpl = 0u64;
        let mut total_opt = 0u64;
        for w in &workloads {
            total_gc += ChaitinBriggs::new().allocate(&w.instance, r).spill_cost;
            total_bfpl += Layered::bfpl().allocate(&w.instance, r).spill_cost;
            total_opt += Optimal::new().allocate(&w.instance, r).spill_cost;
        }
        assert!(
            total_bfpl <= total_gc,
            "BFPL ({total_bfpl}) worse than GC ({total_gc}) at R={r}"
        );
        assert!(total_bfpl >= total_opt);
        // Quasi-optimality: within 10% of optimal on this sample.
        assert!(
            total_bfpl as f64 <= total_opt as f64 * 1.10 + 1.0,
            "BFPL {total_bfpl} not quasi-optimal vs {total_opt} at R={r}"
        );
    }
}

#[test]
fn lh_close_to_optimal_on_jvm_sample() {
    let workloads: Vec<_> = suites::specjvm98(5).into_iter().take(6).collect();
    for r in [4u32, 6] {
        let mut total_lh = 0u64;
        let mut total_opt = 0u64;
        for w in &workloads {
            let lh = LayeredHeuristic::new().allocate(&w.instance, r);
            assert!(verify::check(&w.instance, &lh, r).is_feasible());
            total_lh += lh.spill_cost;
            total_opt += Optimal::new().allocate(&w.instance, r).spill_cost;
        }
        assert!(total_lh >= total_opt);
        assert!(
            total_lh as f64 <= total_opt as f64 * 1.15 + 1.0,
            "LH {total_lh} too far from optimal {total_opt} at R={r}"
        );
    }
}

#[test]
fn monotonicity_in_registers() {
    // More registers never increase any allocator's spill cost — the
    // empirical monotonicity that motivates stepwise allocation (§2.3).
    let inst = figure6_instance();
    for alg in [
        Layered::nl(),
        Layered::bl(),
        Layered::fpl(),
        Layered::bfpl(),
    ] {
        let mut prev = u64::MAX;
        for r in 0..=4u32 {
            let cost = alg.allocate(&inst, r).spill_cost;
            assert!(cost <= prev, "{} cost increased with registers", alg.name());
            prev = cost;
        }
    }
}

#[test]
fn spill_set_inclusion_holds_empirically_on_suite_sample() {
    // §2.3: inclusion of optimal spill sets across R holds for the vast
    // majority of instances (99.83% in the paper). Check the weaker,
    // always-true direction: optimal cost is monotone in R; and count
    // that inclusion holds for most of a sample.
    let workloads: Vec<_> = suites::lao_kernels(5).into_iter().take(10).collect();
    let mut inclusion_holds = 0;
    let mut total = 0;
    for w in &workloads {
        let mut prev_spilled: Option<lra_graph::BitSet> = None;
        let mut ok = true;
        for r in 1..=4u32 {
            let a = Optimal::new().allocate(&w.instance, r);
            let spilled = a.spilled_set(&w.instance);
            if let Some(prev) = &prev_spilled {
                if !spilled.is_subset(prev) {
                    ok = false;
                }
            }
            prev_spilled = Some(spilled);
        }
        total += 1;
        if ok {
            inclusion_holds += 1;
        }
    }
    assert!(
        inclusion_holds * 10 >= total * 7,
        "inclusion held on only {inclusion_holds}/{total} workloads"
    );
}
