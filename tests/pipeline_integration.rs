//! End-to-end pipeline tests across all crates: program generation →
//! analysis → interference → allocation → spill-code insertion.

use lra::core::baselines::{BeladyLinearScan, ChaitinBriggs, LinearScan};
use lra::core::layered::Layered;
use lra::core::pipeline::{build_instance, InstanceKind};
use lra::core::problem::Allocator;
use lra::core::{verify, LayeredHeuristic, Optimal};
use lra::ir::genprog::{
    random_jit_function, random_ssa_function, validate_strict_ssa, JitConfig, SsaConfig,
};
use lra::ir::{liveness, spill_code};
use lra::targets::{Target, TargetKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn full_ssa_pipeline_feasible_for_every_allocator() {
    let target = Target::new(TargetKind::St231);
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_ssa_function(&mut rng, &SsaConfig::default(), format!("f{seed}"));
        validate_strict_ssa(&f).expect("strict SSA");
        let inst = build_instance(&f, &target, InstanceKind::LinearIntervals);
        for r in [1u32, 2, 4, 8] {
            let opt = Optimal::new().allocate(&inst, r);
            assert!(verify::check(&inst, &opt, r).is_feasible());
            for a in [
                Layered::nl().allocate(&inst, r),
                Layered::bl().allocate(&inst, r),
                Layered::fpl().allocate(&inst, r),
                Layered::bfpl().allocate(&inst, r),
                ChaitinBriggs::new().allocate(&inst, r),
                LinearScan::new().allocate(&inst, r),
                BeladyLinearScan::new().allocate(&inst, r),
                LayeredHeuristic::new().allocate(&inst, r),
            ] {
                assert!(
                    verify::check(&inst, &a, r).is_feasible(),
                    "seed {seed}, R={r}"
                );
                assert!(a.spill_cost >= opt.spill_cost, "someone beat Optimal");
            }
        }
    }
}

#[test]
fn spilling_the_optimal_set_reduces_pressure_towards_r() {
    let target = Target::new(TargetKind::St231);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let cfg = SsaConfig {
        target_instrs: 120,
        liveness_window: 20,
        ..SsaConfig::default()
    };
    let f = random_ssa_function(&mut rng, &cfg, "pressure");
    let before = liveness::analyze(&f).max_live;
    let inst = build_instance(&f, &target, InstanceKind::PreciseGraph);
    assert!(
        before > 4,
        "need real pressure for this test (got {before})"
    );

    let r = 4u32;
    let alloc = Layered::bfpl().allocate(&inst, r);
    let spilled = alloc.spilled_set(&inst);
    let (g, stats) = spill_code::insert_spill_code(&f, &spilled);
    let after = liveness::analyze(&g).max_live;
    assert!(stats.stores > 0 && stats.loads > 0);
    assert!(
        after < before,
        "spilling must lower MaxLive ({before} -> {after})"
    );
    // Reload operands keep some residual pressure (§4.3), but the bulk
    // of the long ranges is gone.
    assert!(
        after <= r as usize + 3,
        "residual pressure too high: {after}"
    );
}

#[test]
fn jit_pipeline_with_all_jvm_allocators() {
    let target = Target::new(TargetKind::ArmCortexA8);
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_jit_function(&mut rng, &JitConfig::default(), format!("m{seed}"));
        let precise = build_instance(&f, &target, InstanceKind::PreciseGraph);
        let coarse = build_instance(&f, &target, InstanceKind::LinearIntervals);
        for r in [2u32, 4, 6] {
            let lh = LayeredHeuristic::new().allocate(&precise, r);
            let gc = ChaitinBriggs::new().allocate(&precise, r);
            let ls = LinearScan::new().allocate(&coarse, r);
            assert!(verify::check(&precise, &lh, r).is_feasible());
            assert!(verify::check(&precise, &gc, r).is_feasible());
            assert!(verify::check(&coarse, &ls, r).is_feasible());
            // The linear-scan allocation is feasible on the precise
            // graph too (the interval graph is a supergraph).
            assert!(verify::check_set(&precise, &ls.allocated, r).is_feasible());
        }
    }
}

#[test]
fn precise_and_interval_views_agree_on_weights() {
    let target = Target::new(TargetKind::St231);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let f = random_ssa_function(&mut rng, &SsaConfig::default(), "w");
    let a = build_instance(&f, &target, InstanceKind::PreciseGraph);
    let b = build_instance(&f, &target, InstanceKind::LinearIntervals);
    assert_eq!(a.weighted_graph().weights(), b.weighted_graph().weights());
    assert_eq!(a.total_weight(), b.total_weight());
}

#[test]
fn arm_target_costs_differ_from_st231() {
    // The ABI/latency model must actually flow into the costs.
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let f = random_ssa_function(&mut rng, &SsaConfig::default(), "t");
    let st = build_instance(
        &f,
        &Target::new(TargetKind::St231),
        InstanceKind::PreciseGraph,
    );
    let arm = build_instance(
        &f,
        &Target::new(TargetKind::ArmCortexA8),
        InstanceKind::PreciseGraph,
    );
    assert_ne!(
        st.weighted_graph().weights(),
        arm.weighted_graph().weights(),
        "store-cost difference must show up in spill costs"
    );
}
