//! Integration tests for the budgeted portfolio policy: determinism
//! across worker counts (the PR-2 byte-identity guarantee extended to
//! the escalating policy), graceful degradation on zero/expired
//! budgets, and the never-worse-than-cheap contract.

use lra::bench::suites;
use lra::core::pipeline::InstanceKind;
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, BatchAllocator, PortfolioConfig};
use std::time::Duration;

fn jit_subset(n: usize) -> Vec<lra::ir::Function> {
    suites::jit_large_functions(5).into_iter().take(n).collect()
}

fn base_pipeline() -> AllocationPipeline {
    AllocationPipeline::new(Target::new(TargetKind::ArmCortexA8))
        .instance_kind(InstanceKind::PreciseGraph)
        .registers(6)
        .max_rounds(3)
}

/// A fuel-only portfolio batch must render byte-identically at any
/// worker count — the escalation decision is part of the determinism
/// contract, not an exception to it.
#[test]
fn portfolio_batch_reports_are_byte_identical_across_thread_counts() {
    let fs = jit_subset(6);
    let pipeline = base_pipeline().portfolio(PortfolioConfig::default().node_budget(20_000));
    let seq = BatchAllocator::new(pipeline.clone()).threads(1).run(&fs);
    let par = BatchAllocator::new(pipeline).threads(4).run(&fs);
    assert_eq!(seq.render(), par.render());
    assert_eq!(seq.summary, par.summary);
    assert_eq!(seq.summary.failed, 0);
}

/// A zero node budget disables escalation: the whole batch must be
/// byte-identical to running the cheap allocator directly — and must
/// not error.
#[test]
fn zero_node_budget_degrades_to_the_cheap_allocator() {
    let fs = jit_subset(4);
    let cheap = BatchAllocator::new(base_pipeline().allocator("LH")).run(&fs);
    let zero =
        BatchAllocator::new(base_pipeline().portfolio(PortfolioConfig::default().node_budget(0)))
            .run(&fs);
    assert_eq!(cheap.render(), zero.render());
    assert_eq!(zero.summary.failed, 0);
}

/// An already-expired wall-clock budget likewise degrades to the
/// cheap tier's result rather than erroring.
#[test]
fn expired_time_budget_degrades_to_the_cheap_allocator() {
    let fs = jit_subset(4);
    let cheap = BatchAllocator::new(base_pipeline().allocator("LH")).run(&fs);
    let expired = BatchAllocator::new(
        base_pipeline().portfolio(PortfolioConfig::default().time_budget(Some(Duration::ZERO))),
    )
    .run(&fs);
    assert_eq!(cheap.render(), expired.render());
    assert_eq!(expired.summary.failed, 0);
}

/// On the paper's metric (first-round allocation cost) the portfolio
/// can only match or improve on its cheap tier, function by function.
#[test]
fn portfolio_first_round_cost_never_exceeds_the_cheap_tier() {
    let fs = jit_subset(6);
    let one_round = |pipeline: AllocationPipeline| {
        BatchAllocator::new(pipeline.max_rounds(1))
            .run(&fs)
            .items
            .into_iter()
            .map(|i| i.outcome.expect("allocates").first_round_spill_cost())
            .collect::<Vec<u64>>()
    };
    let cheap = one_round(base_pipeline().allocator("LH"));
    let portfolio =
        one_round(base_pipeline().portfolio(PortfolioConfig::default().node_budget(50_000)));
    for ((c, p), f) in cheap.iter().zip(&portfolio).zip(&fs) {
        assert!(p <= c, "{}: portfolio {p} worse than cheap {c}", f.name);
    }
}

/// The size-adaptive default budget (`SolveBudget::scaled_for`) is a
/// pure function of the instance, so a batch under
/// `PortfolioConfig::default()` must stay byte-identical at any
/// worker count — fuel-only determinism extends to adaptive fuel.
#[test]
fn adaptive_budget_batches_are_byte_identical_across_thread_counts() {
    let fs = jit_subset(6);
    let cfg = PortfolioConfig::default();
    assert!(cfg.adaptive, "the default budget is size-adaptive");
    let pipeline = base_pipeline().portfolio(cfg);
    let seq = BatchAllocator::new(pipeline.clone()).threads(1).run(&fs);
    let par = BatchAllocator::new(pipeline.clone()).threads(2).run(&fs);
    let wide = BatchAllocator::new(pipeline).threads(4).run(&fs);
    assert_eq!(seq.render(), par.render());
    assert_eq!(seq.render(), wide.render());
    assert_eq!(seq.summary.failed, 0);
}

/// The registry name alone (no explicit config) also works end to end
/// through the pipeline, with the default budget.
#[test]
fn portfolio_is_selectable_by_registry_name() {
    let fs = jit_subset(2);
    let report = BatchAllocator::new(base_pipeline().allocator("Portfolio")).run(&fs);
    assert_eq!(report.summary.failed, 0);
    assert_eq!(report.summary.functions, 2);
}
