//! Registry round-trip tests (ISSUE 1 satellite): every allocator name
//! listed by `AllocatorRegistry` resolves, allocates a small instance,
//! and survives `verify` — both at the instance level and through the
//! `AllocationPipeline`.

use lra::core::pipeline::InstanceKind;
use lra::core::problem::Instance;
use lra::core::{verify, AllocatorRegistry};
use lra::graph::Interval;
use lra::targets::{Target, TargetKind};
use lra::AllocationPipeline;

/// A small interval instance: chordal *and* interval-backed, so every
/// registered allocator — including the linear scans — can solve it.
fn small_interval_instance() -> Instance {
    let intervals = vec![
        Interval::new(0, 6),
        Interval::new(1, 4),
        Interval::new(2, 9),
        Interval::new(5, 11),
        Interval::new(7, 12),
        Interval::new(8, 10),
        Interval::new(3, 5),
        Interval::new(10, 14),
    ];
    let weights = vec![4, 7, 2, 9, 1, 6, 3, 5];
    Instance::from_intervals(intervals, weights)
}

#[test]
fn every_listed_name_resolves_allocates_and_verifies() {
    let inst = small_interval_instance();
    let names = AllocatorRegistry::names();
    assert_eq!(
        names,
        vec![
            "NL",
            "BL",
            "FPL",
            "BFPL",
            "LH",
            "GC",
            "DLS",
            "BLS",
            "Optimal",
            "Portfolio"
        ],
        "registry advertises the paper's allocator set plus the portfolio policy"
    );
    for name in names {
        let allocator = AllocatorRegistry::get(name)
            .unwrap_or_else(|| panic!("{name} listed but not resolvable"));
        assert_eq!(allocator.name(), name);
        for r in [1u32, 2, 3] {
            let alloc = allocator.allocate(&inst, r);
            assert!(
                verify::check(&inst, &alloc, r).is_feasible(),
                "{name} produced an infeasible allocation at R={r}"
            );
            assert_eq!(
                alloc.spill_cost + alloc.allocated_weight,
                inst.total_weight(),
                "{name}: cost bookkeeping broken"
            );
        }
    }
}

#[test]
fn every_listed_name_runs_through_the_pipeline() {
    use lra::ir::builder::FunctionBuilder;
    // A small hand-built SSA diamond with real pressure.
    let mut b = FunctionBuilder::new("roundtrip");
    let e = b.entry_block();
    let l = b.block();
    let r_ = b.block();
    let j = b.block();
    b.set_succs(e, &[l, r_]);
    b.set_succs(l, &[j]);
    b.set_succs(r_, &[j]);
    let a = b.op(e, &[]);
    let c = b.op(e, &[a]);
    let xl = b.op(l, &[a, c]);
    let xr = b.op(r_, &[c]);
    let m = b.phi(j, &[xl, xr]);
    b.op(j, &[m, a]);
    let f = b.finish();

    let target = Target::new(TargetKind::ArmCortexA8);
    for spec in AllocatorRegistry::specs() {
        // Interval-backed instances satisfy both the chordality and the
        // interval requirements, so one view fits all allocators.
        let report = AllocationPipeline::new(target)
            .allocator(spec.name)
            .instance_kind(InstanceKind::LinearIntervals)
            .registers(2)
            .max_rounds(4)
            .run(&f)
            .unwrap_or_else(|e| panic!("{}: pipeline error {e}", spec.name));
        assert!(
            report.verdict.is_feasible(),
            "{}: pipeline result failed verification",
            spec.name
        );
    }
}

#[test]
fn unknown_names_are_rejected_with_the_full_listing() {
    assert!(AllocatorRegistry::get("does-not-exist").is_none());
    let err = AllocationPipeline::new(Target::new(TargetKind::St231))
        .allocator("does-not-exist")
        .run(&lra::ir::builder::FunctionBuilder::new("empty").finish())
        .unwrap_err();
    let msg = err.to_string();
    for name in AllocatorRegistry::names() {
        assert!(msg.contains(name), "error message should list {name}");
    }
}
