//! The worker-scratch reuse contract, end to end:
//!
//! * property test — one long-lived [`lra::WorkerScratch`] threaded
//!   through a stream of random SSA and JIT functions of wildly
//!   different sizes produces reports byte-identical to fresh scratch
//!   per function (buffer recycling never changes output bits);
//! * the low-level analyses (`liveness::analyze_in`,
//!   `interference_graph_in`, `live_intervals_in`) agree with their
//!   scratch-free entry points on the same reused buffers;
//! * a panicking pipeline run mid-stream leaves the scratch usable
//!   and uncontaminating.

use lra::core::batch::{allocate_item, allocate_item_with};
use lra::core::pipeline::InstanceKind;
use lra::ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra::ir::{interference, liveness, AnalysisScratch, Function};
use lra::targets::{Target, TargetKind};
use lra::{AllocationPipeline, WorkerScratch};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A function whose size swings with `scale` so consecutive items
/// force the scratch buffers to both grow and shrink.
fn random_function(rng: &mut ChaCha8Rng, jit: bool, scale: u32) -> Function {
    if jit {
        let cfg = JitConfig {
            vars: (8 + scale * 7) as usize,
            blocks: (4 + scale * 2) as usize,
            ..JitConfig::default()
        };
        random_jit_function(rng, &cfg, "jit")
    } else {
        let cfg = SsaConfig {
            target_instrs: (20 + scale * 30) as usize,
            branch_percent: 30,
            loop_percent: 20,
            liveness_window: 6 + scale as usize * 3,
            ..SsaConfig::default()
        };
        random_ssa_function(rng, &cfg, "ssa")
    }
}

fn pipelines() -> Vec<AllocationPipeline> {
    let t = Target::new(TargetKind::ArmCortexA8);
    vec![
        AllocationPipeline::new(t)
            .allocator("LH")
            .instance_kind(InstanceKind::PreciseGraph)
            .registers(4)
            .max_rounds(4),
        AllocationPipeline::new(t)
            .allocator("BFPL")
            .instance_kind(InstanceKind::LinearIntervals)
            .registers(4)
            .max_rounds(4)
            .optimized_spill_code(true),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reused_worker_scratch_is_byte_identical_to_fresh(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for pipeline in pipelines() {
            // One scratch across the whole stream, exactly as a batch
            // or service worker holds it.
            let mut scratch = WorkerScratch::new();
            for i in 0..4u32 {
                // Big → small → big: shrinking reuse is the risky
                // direction (stale high bits), so force it every pair.
                let scale = if i % 2 == 0 { 3 } else { 0 };
                let f = random_function(&mut rng, (seed + i as u64).is_multiple_of(2), scale);
                let reused = allocate_item_with(&pipeline, &f, &mut scratch);
                let fresh = allocate_item(&pipeline, &f);
                prop_assert_eq!(
                    reused.row(),
                    fresh.row(),
                    "seed {} item {} diverged under scratch reuse",
                    seed,
                    i
                );
            }
        }
    }

    #[test]
    fn reused_analysis_scratch_matches_scratch_free_analyses(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch = AnalysisScratch::new();
        for i in 0..3u32 {
            let scale = [2, 0, 3][i as usize];
            let f = random_function(&mut rng, (seed + i as u64) % 2 == 1, scale);
            let live_in = liveness::analyze_in(&f, &mut scratch);
            let live = liveness::analyze(&f);
            prop_assert_eq!(&live_in, &live, "seed {} item {}: liveness", seed, i);

            let g_in = interference::interference_graph_in(&f, &live, &mut scratch);
            let g = interference::interference_graph(&f, &live);
            prop_assert_eq!(g_in.edge_count(), g.edge_count(), "seed {} item {}: edges", seed, i);

            let lin = interference::linearize(&f);
            let iv_in = interference::live_intervals_in(&f, &live, &lin, &mut scratch);
            let iv = interference::live_intervals(&f, &live, &lin);
            prop_assert_eq!(iv_in, iv, "seed {} item {}: intervals", seed, i);
        }
    }
}

#[test]
fn scratch_survives_a_panicking_run_between_good_runs() {
    use lra::ir::cfg::{Block, BlockId};
    let mut blocks = vec![Block::default()];
    blocks[0].succs = vec![BlockId(7)]; // dangling successor panics analysis
    let broken = Function {
        name: "broken".into(),
        blocks,
        entry: BlockId(0),
        value_count: 1,
        params: vec![],
    };
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for pipeline in pipelines() {
        let mut scratch = WorkerScratch::new();
        let good = random_function(&mut rng, true, 2);
        let first = allocate_item_with(&pipeline, &good, &mut scratch);
        let bad = allocate_item_with(&pipeline, &broken, &mut scratch);
        assert!(bad.outcome.is_err(), "broken function must fail");
        let second = allocate_item_with(&pipeline, &good, &mut scratch);
        assert_eq!(first.row(), second.row());
        assert_eq!(first.row(), allocate_item(&pipeline, &good).row());
    }
}
