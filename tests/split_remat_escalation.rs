//! Integration tests for the final-round escalation tier (§2.1
//! live-range splitting + rematerialization): escalated results must
//! verify, must never cost more than the base run they replace, must
//! be byte-identical across worker counts and reanalysis modes, and
//! must keep rescuing the specjvm98 / jit-large residual-pressure
//! tail pinned by the recorded baselines.

use lra::bench::batchrun;

/// Returns the standard experiment whose name starts with `prefix`.
fn experiment(prefix: &str) -> batchrun::BatchExperiment {
    batchrun::standard_experiments(2013)
        .into_iter()
        .find(|e| e.name.starts_with(prefix))
        .unwrap_or_else(|| panic!("standard experiment {prefix}* exists"))
}

/// Property: on the real specjvm98 corpus, every escalated run
/// converges to a verified total assignment with a valid rewritten
/// function, at no higher spill cost than the base run it displaced.
#[test]
fn escalated_jvm98_runs_verify_and_never_cost_more() {
    let exp = experiment("specjvm98/");
    let base_pipeline = exp.pipeline.clone().escalation(false);
    let mut escalations = 0;
    for f in &exp.functions {
        let with = exp.pipeline.run(f).expect("jvm98 function allocates");
        if !with.escalated {
            continue;
        }
        escalations += 1;
        let base = base_pipeline.run(f).expect("base run allocates");
        assert!(
            !base.converged,
            "{}: escalation only fires on stalls",
            f.name
        );
        assert!(with.converged, "{}: accepted escalations converge", f.name);
        assert!(
            with.verdict.is_feasible(),
            "{}: escalated result verifies",
            f.name
        );
        assert!(
            with.function.validate().is_ok(),
            "{}: rewrite stays valid",
            f.name
        );
        assert!(
            with.split_copies > 0,
            "{}: escalation implies a split",
            f.name
        );
        assert!(
            with.spill_cost <= base.spill_cost,
            "{}: escalated cost {} exceeds base {}",
            f.name,
            with.spill_cost,
            base.spill_cost
        );
        // The paper's spill-everywhere figure is escalation-independent.
        assert_eq!(with.first_round_cost, base.first_round_cost, "{}", f.name);
    }
    assert!(escalations > 0, "the corpus must exercise the tier");
}

/// The escalation tier is deterministic: fuel-only budgets make the
/// batch report byte-identical at any worker count, and the
/// incremental-reanalysis fast path must not change a single byte
/// against a full per-round reanalysis.
#[test]
fn escalation_is_thread_count_and_reanalysis_invariant() {
    let exp = experiment("jit-large/");
    let seq = exp.run(1);
    let par = exp.run(4);
    assert_eq!(seq.render(), par.render());
    assert_eq!(seq.summary, par.summary);
    assert!(
        seq.summary.escalated > 0,
        "the corpus must exercise the tier"
    );

    let full = batchrun::BatchExperiment {
        name: exp.name.clone(),
        pipeline: exp.pipeline.clone().full_reanalysis(true),
        functions: exp.functions.clone(),
    };
    let incremental = batchrun::BatchExperiment {
        name: exp.name.clone(),
        pipeline: exp.pipeline.clone().full_reanalysis(false),
        functions: exp.functions,
    };
    let a = full.run(2);
    let b = incremental.run(2);
    assert_eq!(a.render(), b.render());
    assert_eq!(a.summary, b.summary);
}

/// Regression: the converged counts the tier buys on the standard
/// corpora at seed 2013. The PR-6 baselines were 15/54 (specjvm98)
/// and 10/27 (jit-large); splitting + rematerialization rescues 11
/// and 9 functions respectively. A drop here means the escalation
/// tier regressed.
#[test]
fn split_remat_rescues_the_standard_corpora_tails() {
    let jvm98 = experiment("specjvm98/").run(2).summary;
    assert_eq!(jvm98.functions, 54);
    assert_eq!(jvm98.converged, 26, "specjvm98 converged");
    assert_eq!(jvm98.escalated, 11, "specjvm98 escalated");
    assert!(
        jvm98.converged > 15,
        "must beat the pre-escalation baseline"
    );

    let large = experiment("jit-large/").run(2).summary;
    assert_eq!(large.functions, 27);
    assert_eq!(large.converged, 19, "jit-large converged");
    assert_eq!(large.escalated, 9, "jit-large escalated");
    assert!(
        large.converged > 10,
        "must beat the pre-escalation baseline"
    );
}
